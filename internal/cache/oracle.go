package cache

import (
	"repro/internal/isa"
	"repro/internal/trace"
)

// This file implements the shared fetch oracle behind the geometry-sharded
// broadcast replay (DESIGN.md §11). With wrong-path pollution off, every
// engine that shares a cache Geometry drives bit-identical i-cache state
// from the same trace, so a sweep cell of E same-geometry engines pays for
// the same LRU simulation E times. The Oracle runs that simulation ONCE per
// record block and publishes the per-record (hit, way) outcomes as an
// AccessAnnotations value; each engine in the geometry group then mirrors
// the outcomes into its own tags (Cache.ApplyFill + Cache.AddAccesses)
// instead of calling Cache.Access per record.

// Annotation slot encoding: bit 7 is the hit flag, the low bits are the way
// the accessed line resides in after the access (the fill victim on a
// miss). The set is not stored — it is a pure function of the record's PC
// and the group's shared Geometry (SetIndex), so consumers rederive it for
// free.
const (
	// AnnHit is set in an annotation slot when the access hit.
	AnnHit uint8 = 0x80
	// AnnWayMask extracts the way from an annotation slot (associativity
	// is at most 127 by far — the paper's maximum is 4).
	AnnWayMask uint8 = 0x7f
)

// AccessAnnotations is the columnar access outcome of one record block
// under one cache geometry: one encoded (hit, way) slot per record, plus
// the block's miss count so consumers can credit counters in bulk. Slots
// are written only for the records an engine's batched replay actually
// dispatches on — run leaders and breaks; the same-line followers that
// stepBlockRuns batches into one AccessRun always hit the leader's slot
// and their annotation bytes are left stale. Slot buffers are recycled
// through trace's annotation-buffer pool (see Release).
type AccessAnnotations struct {
	// Slots holds one encoded slot per record (AnnHit | way), valid at
	// run-leader and break positions only.
	Slots []uint8
	// Misses is the number of block accesses that missed.
	Misses uint64
	// ColdMisses is the number of those misses that were compulsory
	// (first demand touch of the line; see Cache.ColdMisses).
	ColdMisses uint64
}

// Release returns the slot buffer to the shared pool. The annotation must
// not be used afterwards.
func (a *AccessAnnotations) Release() {
	trace.PutAnnBuf(a.Slots)
	a.Slots = nil
}

// Oracle replays record blocks through a private cache exactly as an
// engine's batched replay would (Access per leader/break, AccessRun per
// same-line run), annotating each block with the access outcomes. Because
// the oracle applies the identical access stream, its cache state — and
// therefore every (hit, way) it publishes and every fill it implies — is
// bit-identical to what each group member's private cache would have done.
type Oracle struct {
	c *Cache
}

// NewOracle builds a cold oracle for the geometry.
func NewOracle(g Geometry) *Oracle { return &Oracle{c: New(g)} }

// Geometry returns the geometry the oracle simulates.
func (o *Oracle) Geometry() Geometry { return o.c.Geometry() }

// Reset restores the oracle to its cold state.
func (o *Oracle) Reset() { o.c.Reset() }

// Annotate simulates one record block and fills ann with its access
// outcomes. runs, when non-nil, is the block's shared same-line run
// annotation for this geometry's line size (trace.Chunked.RunLens
// contract); nil runs falls back to scanning the line boundaries, exactly
// like the engines' own stepBlock path. ann's slot buffer is grown from
// the trace annotation pool as needed and reused across calls.
func (o *Oracle) Annotate(recs []trace.Record, runs []uint8, ann *AccessAnnotations) {
	if cap(ann.Slots) < len(recs) {
		trace.PutAnnBuf(ann.Slots)
		ann.Slots = trace.GetAnnBuf(len(recs))
	}
	slots := ann.Slots[:len(recs)]
	ann.Slots = slots
	c := o.c
	missBase := c.misses
	coldBase := c.coldMisses
	for i := 0; i < len(recs); {
		r := recs[i]
		hit, way := c.Access(r.PC)
		s := uint8(way)
		if hit {
			s |= AnnHit
		}
		slots[i] = s
		i++
		if r.IsBreak() {
			continue
		}
		if runs != nil {
			// Precomputed boundaries: identical traversal to
			// base.stepBlockRuns.
			if n := uint64(runs[i-1]); n > 0 {
				set, w := c.LastSlot()
				c.AccessRun(set, w, n)
				i += int(n)
			}
			for i < len(recs) && recs[i].Kind == isa.NonBranch {
				i = o.annotateLeader(recs, slots, i)
				if n := uint64(runs[i-1]); n > 0 {
					set, w := c.LastSlot()
					c.AccessRun(set, w, n)
					i += int(n)
				}
			}
		} else {
			// Scanning path: identical traversal to base.stepBlock.
			i = o.runTail(recs, i, c.geom.LineAddr(r.PC))
			for i < len(recs) && recs[i].Kind == isa.NonBranch {
				i = o.annotateLeader(recs, slots, i)
				i = o.runTail(recs, i, c.geom.LineAddr(recs[i-1].PC))
			}
		}
	}
	ann.Misses = c.misses - missBase
	ann.ColdMisses = c.coldMisses - coldBase
}

// annotateLeader accesses the run-leader record at i and records its slot,
// returning i+1.
func (o *Oracle) annotateLeader(recs []trace.Record, slots []uint8, i int) int {
	hit, way := o.c.Access(recs[i].PC)
	s := uint8(way)
	if hit {
		s |= AnnHit
	}
	slots[i] = s
	return i + 1
}

// runTail batches the same-line non-branch records from i on (the mirror
// of base.sameLineTail), returning the index after the run.
func (o *Oracle) runTail(recs []trace.Record, i int, line uint32) int {
	c := o.c
	j := i
	for j < len(recs) && recs[j].Kind == isa.NonBranch && c.geom.LineAddr(recs[j].PC) == line {
		j++
	}
	if j > i {
		set, way := c.LastSlot()
		c.AccessRun(set, way, uint64(j-i))
	}
	return j
}
