package cache

import (
	"repro/internal/isa"
	"repro/internal/trace"
)

// This file implements the shared fetch oracle behind the geometry-sharded
// broadcast replay (DESIGN.md §11). With wrong-path pollution off, every
// engine that shares a cache Geometry drives bit-identical i-cache state
// from the same trace, so a sweep cell of E same-geometry engines pays for
// the same LRU simulation E times. The Oracle runs that simulation ONCE per
// record block and publishes the per-record (hit, way) outcomes as an
// AccessAnnotations value; each engine in the geometry group then mirrors
// the outcomes into its own tags (Cache.ApplyFill + Cache.AddAccesses)
// instead of calling Cache.Access per record.

// Annotation slot encoding: bit 7 is the hit flag, the low bits are the way
// the accessed line resides in after the access (the fill victim on a
// miss). The set is not stored — it is a pure function of the record's PC
// and the group's shared Geometry (SetIndex), so consumers rederive it for
// free.
const (
	// AnnHit is set in an annotation slot when the access hit.
	AnnHit uint8 = 0x80
	// AnnWayMask extracts the way from an annotation slot (associativity
	// is at most 127 by far — the paper's maximum is 4).
	AnnWayMask uint8 = 0x7f
)

// Replay-event encoding: each element of AccessAnnotations.Events packs a
// record index with the flags saying why an annotated replay must visit it.
// Every record NOT in the event list is a hit the oracle already counted
// and a non-break the frontend's accounting ignores, so a member replays a
// block by walking the event list alone — no per-record scanning.
const (
	// EvtFill marks a missing access: the member applies the fill to its
	// tag mirror (Cache.ApplyFill).
	EvtFill uint32 = 1 << 0
	// EvtBreak marks a break record: the member runs its §6 break
	// accounting.
	EvtBreak uint32 = 1 << 1
	// EvtPost marks the record after a break (and the first record of
	// every block): the point where a deferred predictor update resolves
	// with this record's way.
	EvtPost uint32 = 1 << 2
	// EvtShift is the index shift above the flag bits.
	EvtShift = 3

	// EvtIdxBits is the width of the record-index field above the flags
	// (record blocks hold at most trace.DefaultChunkRecords = 4096
	// records; Annotate checks the bound). Break events carry the break
	// PC's set index in the bits above the field, so every replay engine
	// sharing the annotation reads the set instead of recomputing
	// Geometry.SetIndex per break.
	EvtIdxBits         = 13
	EvtIdxMask  uint32 = 1<<EvtIdxBits - 1
	EvtSetShift        = EvtShift + EvtIdxBits
)

// AccessAnnotations is the columnar access outcome of one record block
// under one cache geometry: one encoded (hit, way) slot per record, the
// packed replay-event list, plus the block's miss count so consumers can
// credit counters in bulk. Slots are written only for the records an
// engine's batched replay actually dispatches on — run leaders and breaks;
// the same-line followers that stepBlockRuns batches into one AccessRun
// always hit the leader's slot and their annotation bytes are left stale.
// Buffers are recycled through trace's annotation-buffer pools (see
// Release).
type AccessAnnotations struct {
	// Slots holds one encoded slot per record (AnnHit | way), valid at
	// run-leader and break positions only.
	Slots []uint8
	// Events is the block's replay-event list in record order: index<<
	// EvtShift | EvtFill/EvtBreak/EvtPost. Every indexed record is a run
	// leader, so its Slots entry is valid.
	Events []uint32
	// Misses is the number of block accesses that missed.
	Misses uint64
	// ColdMisses is the number of those misses that were compulsory
	// (first demand touch of the line; see Cache.ColdMisses).
	ColdMisses uint64
}

// Release returns the buffers to the shared pools. The annotation must
// not be used afterwards.
func (a *AccessAnnotations) Release() {
	trace.PutAnnBuf(a.Slots)
	a.Slots = nil
	trace.PutEvtBuf(a.Events)
	a.Events = nil
}

// Oracle replays record blocks through a private cache exactly as an
// engine's batched replay would (Access per leader/break, AccessRun per
// same-line run), annotating each block with the access outcomes. Because
// the oracle applies the identical access stream, its cache state — and
// therefore every (hit, way) it publishes and every fill it implies — is
// bit-identical to what each group member's private cache would have done.
type Oracle struct {
	c *Cache
}

// NewOracle builds a cold oracle for the geometry.
func NewOracle(g Geometry) *Oracle { return &Oracle{c: New(g)} }

// Geometry returns the geometry the oracle simulates.
func (o *Oracle) Geometry() Geometry { return o.c.Geometry() }

// Reset restores the oracle to its cold state.
func (o *Oracle) Reset() { o.c.Reset() }

// Annotate simulates one record block and fills ann with its access
// outcomes and replay events. runs, when non-nil, is the block's shared
// same-line run annotation for this geometry's line size
// (trace.Chunked.RunLens contract); nil runs falls back to scanning the
// line boundaries, exactly like the engines' own stepBlock path. ann's
// buffers are grown from the trace annotation pools as needed and reused
// across calls.
func (o *Oracle) Annotate(recs []trace.Record, runs []uint8, ann *AccessAnnotations) {
	if len(recs) > 1<<EvtIdxBits {
		panic("cache: record block exceeds the event index field")
	}
	if cap(ann.Slots) < len(recs) {
		trace.PutAnnBuf(ann.Slots)
		ann.Slots = trace.GetAnnBuf(len(recs))
	}
	slots := ann.Slots[:len(recs)]
	ann.Slots = slots
	if ann.Events == nil {
		ann.Events = trace.GetEvtBuf(len(recs) / 2)
	}
	events := ann.Events[:0]
	c := o.c
	missBase := c.misses
	coldBase := c.coldMisses
	// Only the first record of a block is an EvtPost resolution point: a
	// break at the end of the PREVIOUS block may have deferred its update
	// here. Within the block, a break's deferred update resolves inline
	// at the break event itself — the successor's way is the next
	// record's slot, which the oracle always writes (the record after a
	// break is a fresh run leader).
	post := EvtPost
	for i := 0; i < len(recs); {
		r := recs[i]
		hit, way := c.Access(r.PC)
		s := uint8(way)
		flags := post
		post = 0
		if hit {
			s |= AnnHit
		} else {
			flags |= EvtFill
		}
		slots[i] = s
		i++
		if r.IsBreak() {
			// lastSet is r.PC's set index, fresh from the Access above.
			events = append(events,
				uint32(c.lastSet)<<EvtSetShift|uint32(i-1)<<EvtShift|flags|EvtBreak)
			continue
		}
		if flags != 0 {
			events = append(events, uint32(i-1)<<EvtShift|flags)
		}
		if runs != nil {
			// Precomputed boundaries: identical traversal to
			// base.stepBlockRuns.
			if n := uint64(runs[i-1]); n > 0 {
				set, w := c.LastSlot()
				c.AccessRun(set, w, n)
				i += int(n)
			}
			for i < len(recs) && recs[i].Kind == isa.NonBranch {
				if lhit, lway := c.Access(recs[i].PC); lhit {
					slots[i] = uint8(lway) | AnnHit
				} else {
					slots[i] = uint8(lway)
					events = append(events, uint32(i)<<EvtShift|EvtFill)
				}
				i++
				if n := uint64(runs[i-1]); n > 0 {
					set, w := c.LastSlot()
					c.AccessRun(set, w, n)
					i += int(n)
				}
			}
		} else {
			// Scanning path: identical traversal to base.stepBlock.
			i = o.runTail(recs, i, c.geom.LineAddr(r.PC))
			for i < len(recs) && recs[i].Kind == isa.NonBranch {
				if lhit, lway := c.Access(recs[i].PC); lhit {
					slots[i] = uint8(lway) | AnnHit
				} else {
					slots[i] = uint8(lway)
					events = append(events, uint32(i)<<EvtShift|EvtFill)
				}
				i++
				i = o.runTail(recs, i, c.geom.LineAddr(recs[i-1].PC))
			}
		}
	}
	ann.Events = events
	ann.Misses = c.misses - missBase
	ann.ColdMisses = c.coldMisses - coldBase
}

// runTail batches the same-line non-branch records from i on (the mirror
// of base.sameLineTail), returning the index after the run.
func (o *Oracle) runTail(recs []trace.Record, i int, line uint32) int {
	c := o.c
	j := i
	for j < len(recs) && recs[j].Kind == isa.NonBranch && c.geom.LineAddr(recs[j].PC) == line {
		j++
	}
	if j > i {
		set, way := c.LastSlot()
		c.AccessRun(set, way, uint64(j-i))
	}
	return j
}
