// Package cache implements the instruction cache simulator used by both the
// NLS and BTB fetch architectures: direct-mapped, 2-way, and 4-way LRU
// caches with 32-byte lines, as simulated in the paper (§5.1).
//
// Terminology note: the paper calls the ways of an associative cache "sets"
// ("In a multi-associative instruction cache, the destination line may be in
// any set. The set field is used to indicate where the predicted line is
// located"). This package uses the conventional terms — a *set* is a row of
// the cache selected by the index bits, and a *way* is one of the Assoc
// slots within a set. The NLS "set field" of the paper is the way index
// here.
package cache

import (
	"fmt"
	"math/bits"

	"repro/internal/isa"
)

// Geometry describes the shape of an instruction cache and provides the
// address-decomposition helpers shared by the cache and the NLS predictors.
type Geometry struct {
	sizeBytes int
	lineBytes int
	assoc     int

	numSets   int
	lineShift uint
	setMask   uint32
	offMask   uint32 // InstrsPerLine - 1, precomputed for InstrOffset
}

// NewGeometry validates and builds a cache geometry. Sizes and associativity
// must be powers of two, and the line must hold at least one instruction.
func NewGeometry(sizeBytes, lineBytes, assoc int) (Geometry, error) {
	var g Geometry
	switch {
	case sizeBytes <= 0 || bits.OnesCount(uint(sizeBytes)) != 1:
		return g, fmt.Errorf("cache: size %d is not a positive power of two", sizeBytes)
	case lineBytes < isa.InstrBytes || bits.OnesCount(uint(lineBytes)) != 1:
		return g, fmt.Errorf("cache: line size %d invalid", lineBytes)
	case assoc <= 0 || bits.OnesCount(uint(assoc)) != 1:
		return g, fmt.Errorf("cache: associativity %d is not a positive power of two", assoc)
	case sizeBytes < lineBytes*assoc:
		return g, fmt.Errorf("cache: size %d too small for %d-byte lines at associativity %d",
			sizeBytes, lineBytes, assoc)
	}
	g.sizeBytes = sizeBytes
	g.lineBytes = lineBytes
	g.assoc = assoc
	g.numSets = sizeBytes / lineBytes / assoc
	g.lineShift = uint(bits.TrailingZeros(uint(lineBytes)))
	g.setMask = uint32(g.numSets - 1)
	g.offMask = uint32(lineBytes/isa.InstrBytes - 1)
	return g, nil
}

// MustGeometry is NewGeometry that panics on error, for tests and literals.
func MustGeometry(sizeBytes, lineBytes, assoc int) Geometry {
	g, err := NewGeometry(sizeBytes, lineBytes, assoc)
	if err != nil {
		panic(err)
	}
	return g
}

// SizeBytes returns the total cache capacity in bytes.
func (g Geometry) SizeBytes() int { return g.sizeBytes }

// LineBytes returns the line size in bytes.
func (g Geometry) LineBytes() int { return g.lineBytes }

// Assoc returns the associativity (1 for direct mapped).
func (g Geometry) Assoc() int { return g.assoc }

// NumSets returns the number of sets (rows).
func (g Geometry) NumSets() int { return g.numSets }

// NumLines returns the total number of lines (sets × ways). The size of an
// NLS predictor's line field grows with log2 of this value (§6 of the
// paper).
func (g Geometry) NumLines() int { return g.numSets * g.assoc }

// InstrsPerLine returns how many instructions fit in one line (8 for the
// paper's 32-byte lines).
func (g Geometry) InstrsPerLine() int { return g.lineBytes / isa.InstrBytes }

// LineAddr returns the line address (address with the offset bits removed)
// identifying the memory block containing a.
func (g Geometry) LineAddr(a isa.Addr) uint32 { return uint32(a) >> g.lineShift }

// SetIndex returns the set (row) that address a maps to.
func (g Geometry) SetIndex(a isa.Addr) int {
	return int(g.LineAddr(a) & g.setMask)
}

// SetOfLine returns the set a line address maps to.
func (g Geometry) SetOfLine(lineAddr uint32) int { return int(lineAddr & g.setMask) }

// InstrOffset returns the index of the instruction within its line
// (0..InstrsPerLine-1). This is the low-order portion of the NLS line field.
func (g Geometry) InstrOffset(a isa.Addr) int {
	return int((uint32(a) >> 2) & g.offMask)
}

// IndexBits returns log2(NumSets), the number of bits selecting a set.
func (g Geometry) IndexBits() int { return bits.TrailingZeros(uint(g.numSets)) }

// OffsetBits returns log2(InstrsPerLine), the bits selecting an instruction
// within a line.
func (g Geometry) OffsetBits() int { return bits.TrailingZeros(uint(g.InstrsPerLine())) }

// WayBits returns log2(Assoc), the bits of the NLS set ("way") field. Zero
// for a direct-mapped cache, where the field is not needed.
func (g Geometry) WayBits() int { return bits.TrailingZeros(uint(g.assoc)) }

// NLSPointerBits returns the number of bits an NLS predictor needs to
// identify a target instruction in this cache: set index + instruction
// offset + way. Together with the 2-bit type field this sizes an NLS entry.
func (g Geometry) NLSPointerBits() int {
	return g.IndexBits() + g.OffsetBits() + g.WayBits()
}

// String describes the geometry, e.g. "16KB 2-way 32B-line".
func (g Geometry) String() string {
	assoc := fmt.Sprintf("%d-way", g.assoc)
	if g.assoc == 1 {
		assoc = "direct"
	}
	return fmt.Sprintf("%dKB %s", g.sizeBytes/1024, assoc)
}
