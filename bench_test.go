// Benchmarks regenerating every table and figure of the paper. Each
// benchmark runs the corresponding experiment end-to-end (workload
// generation + simulation) and reports the headline numbers as custom
// metrics, so `go test -bench=. -benchmem` reproduces the evaluation:
//
//	BenchmarkTable1Stats    — Table 1, traced-program attributes
//	BenchmarkFig3Area       — Figure 3, RBE area costs
//	BenchmarkFig4NLSVariants— Figure 4, NLS-cache vs NLS-table BEP
//	BenchmarkFig5BTBvsNLS   — Figure 5, BTB vs 1024 NLS-table BEP
//	BenchmarkFig6AccessTime — Figure 6, BTB access times
//	BenchmarkFig7PerProgram — Figure 7, per-program BEP comparison
//	BenchmarkFig8CPI        — Figure 8, CPI
//	BenchmarkEngines/*      — raw simulation throughput per architecture
//
// `cmd/nlstables` prints the same experiments as full tables.
package repro_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/btb"
	"repro/internal/cache"
	"repro/internal/experiments"
	"repro/internal/fetch"
	"repro/internal/pht"
	"repro/internal/timing"
	"repro/internal/trace"
	"repro/internal/workload"
)

// benchInsns keeps the full benchmark suite fast enough to run in minutes;
// cmd/nlstables defaults to 2M for the reported EXPERIMENTS.md numbers.
const benchInsns = 300_000

func benchRunner() *experiments.Runner {
	return experiments.NewRunner(experiments.DefaultConfig(benchInsns))
}

// benchFigure runs one figure of the grid pipeline end-to-end (fresh
// runner, no store) and returns the runner, the figure, and the resolved
// result set.
func benchFigure(b *testing.B, name string) (*experiments.Runner, experiments.Figure, *experiments.ResultSet) {
	b.Helper()
	r := benchRunner()
	f, ok := experiments.FigureByName(name)
	if !ok {
		b.Fatalf("unknown figure %q", name)
	}
	rs, err := (&experiments.Executor{R: r}).Run(f)
	if err != nil {
		b.Fatal(err)
	}
	return r, f, rs
}

// benchAverages runs a figure and averages its rows over programs.
func benchAverages(b *testing.B, name string) []experiments.Average {
	b.Helper()
	r, f, rs := benchFigure(b, name)
	return experiments.Averages(rs.Rows(f.Grid), r.Cfg.Penalties)
}

func BenchmarkTable1Stats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, f, rs := benchFigure(b, "table1")
		out, _ := f.Render(rs.Context(f))
		if len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFig3Area(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig3()
		last = rows[len(rows)-1].RBE
	}
	b.ReportMetric(last, "rbe-last-row")
}

func BenchmarkFig4NLSVariants(b *testing.B) {
	for i := 0; i < b.N; i++ {
		avgs := benchAverages(b, "fig4")
		report(b, avgs, "1024 NLS-table", "16KB direct", "nls1024-bep")
		report(b, avgs, "NLS-cache", "16KB direct", "nlscache-bep")
	}
}

func BenchmarkFig5BTBvsNLS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		avgs := benchAverages(b, "fig5")
		report(b, avgs, "128-entry direct BTB", "", "btb128-bep")
		report(b, avgs, "1024 NLS-table", "16KB direct", "nls1024-bep")
	}
}

func BenchmarkFig6AccessTime(b *testing.B) {
	var ns float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig6()
		ns = rows[0].NS
	}
	b.ReportMetric(ns, "btb128-direct-ns")
	b.ReportMetric(timing.DirectRatio(128, 4), "assoc-ratio")
}

func BenchmarkFig7PerProgram(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, f, rs := benchFigure(b, "fig7")
		rows := rs.Rows(f.Grid)
		progs := map[string]bool{}
		for _, row := range rows {
			progs[row.Program] = true
		}
		if len(progs) != len(r.Cfg.Programs) {
			b.Fatalf("expected %d programs, got %d", len(r.Cfg.Programs), len(progs))
		}
	}
}

func BenchmarkFig8CPI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		avgs := benchAverages(b, "fig8")
		for _, a := range avgs {
			if a.Arch == "1024 NLS-table" && a.Cache.String() == "16KB direct" {
				b.ReportMetric(a.CPI, "nls1024-cpi")
			}
		}
	}
}

func report(b *testing.B, avgs []experiments.Average, arch, cacheStr, metric string) {
	b.Helper()
	for _, a := range avgs {
		if a.Arch == arch && (cacheStr == "" || a.Cache.String() == cacheStr) {
			b.ReportMetric(a.BEP(), metric)
			return
		}
	}
	b.Fatalf("missing %s / %s", arch, cacheStr)
}

// BenchmarkEngines measures raw per-instruction simulation cost of each
// architecture on a shared gcc-analogue trace.
func BenchmarkEngines(b *testing.B) {
	tr := workload.Gcc().MustTrace(benchInsns)
	g := cache.MustGeometry(16*1024, 32, 1)
	newPHT := func() pht.Predictor { return pht.NewGShare(4096, 6) }
	engines := map[string]func() fetch.Engine{
		"NLSTable1024": func() fetch.Engine { return fetch.NewNLSTableEngine(g, 1024, newPHT(), 32) },
		"NLSCache":     func() fetch.Engine { return fetch.NewNLSCacheEngine(g, 2, newPHT(), 32) },
		"BTB128":       func() fetch.Engine { return fetch.NewBTBEngine(g, btb.Config{Entries: 128, Assoc: 1}, newPHT(), 32) },
		"Johnson":      func() fetch.Engine { return fetch.NewJohnsonEngine(g) },
	}
	for name, mk := range engines {
		b.Run(name, func(b *testing.B) {
			e := mk()
			b.ResetTimer()
			steps := 0
			for i := 0; i < b.N; i++ {
				e.Step(tr.Records[steps%len(tr.Records)])
				steps++
			}
		})
	}
}

// Sweep scheduler comparison: BenchmarkSweepBroadcast (the shared-replay
// broadcaster behind Runner.Sweep) vs BenchmarkSweepPerCell (the legacy
// scheduler: one full trace replay per cell). Both run the same
// 6-program × 4-architecture × 6-cache matrix on traces of sweepBenchInsns
// instructions, pre-generated once outside the timers, and report replayed
// engine-steps as Mstep/s. Names are benchstat-friendly:
//
//	go test -run='^$' -bench='BenchmarkSweep(Broadcast|PerCell)$' -benchmem .
const sweepBenchInsns = 2_000_000

var (
	sweepOnce   sync.Once
	sweepRunner *experiments.Runner
)

// sweepBench returns the shared pre-generated runner and sweep matrix.
func sweepBench(b *testing.B) (*experiments.Runner, []experiments.Factory, []cache.Geometry) {
	b.Helper()
	sweepOnce.Do(func() {
		sweepRunner = experiments.NewRunner(experiments.DefaultConfig(sweepBenchInsns))
	})
	chunked, err := sweepRunner.Chunked() // generates + chunks the traces
	if err != nil {
		b.Fatal(err)
	}
	for _, ct := range chunked {
		ct.RunLens(experiments.LineBytes) // pre-warm the memoized annotations
	}
	factories := []experiments.Factory{
		experiments.NLSCacheFactory(experiments.NLSPerLine),
		experiments.NLSTableFactory(1024),
		experiments.BTBFactory(btb.Config{Entries: 128, Assoc: 1}),
		experiments.JohnsonFactory(),
	}
	return sweepRunner, factories, experiments.PaperCaches()
}

// reportSweepRate reports simulation throughput: every cell steps its full
// trace, regardless of how many times the records were *read*.
func reportSweepRate(b *testing.B, cells int) {
	steps := float64(cells) * float64(sweepBenchInsns) * float64(b.N)
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(steps/s/1e6, "Mstep/s")
	}
}

func BenchmarkSweepBroadcast(b *testing.B) {
	r, factories, caches := sweepBench(b)
	b.ReportAllocs()
	b.ResetTimer()
	var cells int
	for i := 0; i < b.N; i++ {
		results, err := r.Sweep(factories, caches)
		if err != nil {
			b.Fatal(err)
		}
		cells = len(results)
	}
	b.StopTimer()
	reportSweepRate(b, cells)
}

func BenchmarkSweepPerCell(b *testing.B) {
	r, factories, caches := sweepBench(b)
	traces, err := r.Traces()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var cells int
	for i := 0; i < b.N; i++ {
		// The legacy scheduler: every (program × factory × cache) cell
		// re-reads the whole materialized trace through Engine.Step
		// under a bounded worker pool.
		results := make([]experiments.Row, len(traces)*len(factories)*len(caches))
		var wg sync.WaitGroup
		sem := make(chan struct{}, runtime.NumCPU())
		idx := 0
		for _, t := range traces {
			for _, f := range factories {
				for _, g := range caches {
					wg.Add(1)
					sem <- struct{}{}
					go func(slot int, t *trace.Trace, f experiments.Factory, g cache.Geometry) {
						defer wg.Done()
						defer func() { <-sem }()
						e := f.New(g)
						m := fetch.Run(e, t)
						results[slot] = experiments.Row{Program: t.Name, Arch: f.Name,
							Spec: f.Spec.WithGeometry(g), M: *m}
					}(idx, t, f, g)
					idx++
				}
			}
		}
		wg.Wait()
		cells = len(results)
	}
	b.StopTimer()
	reportSweepRate(b, cells)
}

// BenchmarkSweepCorpusReplay is BenchmarkSweepBroadcast for a fresh
// process replaying from the disk-backed trace corpus: every iteration
// starts a brand-new Runner (no memoized traces, no pre-warmed run
// annotations) that attaches a pre-built corpus and decodes its traces
// instead of re-walking the CFG. Against a fresh Runner *without* the
// corpus, the difference is the generate-once/replay-many win; against
// BenchmarkSweepBroadcast, the delta is the whole cold-process overhead a
// corpus leaves behind (decode + annotation warmup).
func BenchmarkSweepCorpusReplay(b *testing.B) {
	_, factories, caches := sweepBench(b)
	cfg := experiments.DefaultConfig(sweepBenchInsns)
	path := experiments.CorpusPath(b.TempDir(), cfg)
	{
		// Build the corpus once, outside the timer, from a throwaway
		// runner.
		r := experiments.NewRunner(cfg)
		if _, err := r.UseCorpus(path); err != nil {
			b.Fatal(err)
		}
		r.CloseCorpus()
	}
	b.ReportAllocs()
	b.ResetTimer()
	var cells int
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(cfg)
		if _, err := r.UseCorpus(path); err != nil {
			b.Fatal(err)
		}
		results, err := r.Sweep(factories, caches)
		if err != nil {
			b.Fatal(err)
		}
		r.CloseCorpus()
		cells = len(results)
	}
	b.StopTimer()
	reportSweepRate(b, cells)
}

// BenchmarkCorpusDecode measures the streaming corpus decoder against
// BenchmarkTraceGeneration: the replay-many side of generate-once.
func BenchmarkCorpusDecode(b *testing.B) {
	cfg := experiments.DefaultConfig(benchInsns)
	cfg.Programs = []workload.Spec{workload.Gcc()}
	path := experiments.CorpusPath(b.TempDir(), cfg)
	r := experiments.NewRunner(cfg)
	if _, err := r.UseCorpus(path); err != nil {
		b.Fatal(err)
	}
	r.CloseCorpus()
	c, err := trace.OpenCorpus(path)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src, err := c.ChunkSource(workload.Gcc().Name, trace.DefaultChunkRecords)
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for blk := src.NextChunk(); len(blk) > 0; blk = src.NextChunk() {
			n += len(blk)
		}
		if n != benchInsns {
			b.Fatalf("decoded %d records, want %d", n, benchInsns)
		}
	}
}

// BenchmarkTraceGeneration measures workload synthesis throughput.
func BenchmarkTraceGeneration(b *testing.B) {
	for _, spec := range []workload.Spec{workload.Doduc(), workload.Gcc()} {
		b.Run(spec.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tr, err := spec.Trace(100_000)
				if err != nil {
					b.Fatal(err)
				}
				if tr.Len() != 100_000 {
					b.Fatal("short trace")
				}
			}
		})
	}
}

// BenchmarkTraceSerialization measures the binary trace format.
func BenchmarkTraceSerialization(b *testing.B) {
	tr := workload.Espresso().MustTrace(100_000)
	b.Run("write", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var sink countWriter
			if err := trace.Write(&sink, tr); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(sink))
		}
	})
}

type countWriter int

func (c *countWriter) Write(p []byte) (int, error) {
	*c += countWriter(len(p))
	return len(p), nil
}

// Example of using the benchmark harness programmatically.
func Example() {
	rows := experiments.Fig6()
	fmt.Printf("128-entry direct BTB ≈ %.1f ns\n", rows[0].NS)
	// Output: 128-entry direct BTB ≈ 4.2 ns
}
