package main

import (
	"bytes"
	"encoding/json"
	"os/exec"
	"path/filepath"
	"testing"
)

// buildBinary compiles this command into dir and returns the binary path.
func buildBinary(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "nlssim")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestJSONStdoutPurity pins the -json contract: stdout carries exactly one
// JSON document and diagnostics stay on stderr, including with -attribute
// (the attribution reports embed in the same document).
func TestJSONStdoutPurity(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real binary")
	}
	dir := t.TempDir()
	bin := buildBinary(t, dir)

	cmd := exec.Command(bin, "-json", "-attribute",
		"-workload", "espresso", "-n", "30000", "-arch", "nls-cache", "-store", "")
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("nlssim: %v\nstderr:\n%s", err, stderr.String())
	}

	var out struct {
		Engine   string `json:"engine"`
		Workload string `json:"workload"`
		Counters struct {
			Breaks uint64 `json:"breaks"`
		} `json:"counters"`
		Attribution []struct {
			Arch   string            `json:"arch"`
			Breaks uint64            `json:"breaks"`
			Causes map[string]uint64 `json:"causes"`
		} `json:"attribution"`
	}
	dec := json.NewDecoder(bytes.NewReader(stdout.Bytes()))
	if err := dec.Decode(&out); err != nil {
		t.Fatalf("stdout is not JSON: %v\nstdout:\n%s", err, stdout.String())
	}
	if dec.More() {
		t.Errorf("stdout carries more than one JSON document:\n%s", stdout.String())
	}
	if out.Workload != "espresso-like" || out.Counters.Breaks == 0 {
		t.Errorf("result shape wrong: %+v", out)
	}
	if len(out.Attribution) != 1 || out.Attribution[0].Breaks != out.Counters.Breaks {
		t.Errorf("attribution must restate the run's counters: %+v vs breaks=%d",
			out.Attribution, out.Counters.Breaks)
	}
	if len(out.Attribution) == 1 && len(out.Attribution[0].Causes) == 0 {
		t.Error("attribution report carries no causes")
	}
}
