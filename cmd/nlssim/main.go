// Command nlssim runs a single workload through one fetch-architecture
// configuration and reports the paper's metrics (%MfB, %MpB, BEP, CPI,
// i-cache miss rate), optionally with a per-branch-kind breakdown.
//
// Usage:
//
//	nlssim -workload gcc -arch nls-table -entries 1024 -cache 16 -assoc 1
//	nlssim -workload li  -arch btb -entries 128 -assoc 4 -breakdown
//	nlssim -workload gcc -n 50000000 -stream    # O(chunk) memory, no materialized trace
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/btb"
	"repro/internal/cache"
	"repro/internal/fetch"
	"repro/internal/isa"
	"repro/internal/metrics"
	"repro/internal/pht"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		wl        = flag.String("workload", "gcc", "workload name (doduc, espresso, gcc, li, cfront, groff)")
		n         = flag.Int("n", 1_000_000, "instructions to simulate")
		arch      = flag.String("arch", "nls-table", "architecture: nls-table, nls-cache, btb, coupled-btb, johnson")
		entries   = flag.Int("entries", 1024, "NLS-table or BTB entries")
		perLine   = flag.Int("perline", 2, "NLS-cache predictors per line")
		cacheKB   = flag.Int("cache", 16, "instruction cache size in KB")
		assoc     = flag.Int("assoc", 1, "cache associativity (nls) or BTB associativity (btb)")
		phtKind   = flag.String("pht", "gshare", "direction predictor: gshare, gas, bimodal, 1bit, taken, nottaken")
		phtSize   = flag.Int("phtsize", 4096, "PHT entries")
		breakdown = flag.Bool("breakdown", false, "print per-branch-kind misfetch/mispredict breakdown")
		stream    = flag.Bool("stream", false, "stream records straight from the executor in O(chunk) memory instead of materializing the trace")
	)
	flag.Parse()

	spec, ok := workload.ByName(*wl)
	if !ok {
		fail(fmt.Errorf("unknown workload %q", *wl))
	}

	dir := newPHT(*phtKind, *phtSize)
	var engine fetch.Engine
	switch *arch {
	case "nls-table":
		g := cache.MustGeometry(*cacheKB*1024, 32, *assoc)
		engine = fetch.NewNLSTableEngine(g, *entries, dir, 32)
	case "nls-cache":
		g := cache.MustGeometry(*cacheKB*1024, 32, *assoc)
		engine = fetch.NewNLSCacheEngine(g, *perLine, dir, 32)
	case "btb":
		g := cache.MustGeometry(*cacheKB*1024, 32, 1)
		engine = fetch.NewBTBEngine(g, btb.Config{Entries: *entries, Assoc: *assoc}, dir, 32)
	case "coupled-btb":
		g := cache.MustGeometry(*cacheKB*1024, 32, 1)
		engine = fetch.NewCoupledBTBEngine(g, btb.Config{Entries: *entries, Assoc: *assoc}, 32)
	case "johnson":
		g := cache.MustGeometry(*cacheKB*1024, 32, *assoc)
		engine = fetch.NewJohnsonEngine(g)
	default:
		fail(fmt.Errorf("unknown architecture %q", *arch))
	}

	var m *metrics.Counters
	if *stream {
		// Drive the engine chunk by chunk from the executor: the same
		// records Trace(n) would materialize, never all resident.
		src, err := spec.Source()
		if err != nil {
			fail(err)
		}
		m = fetch.RunChunks(engine, trace.NewSourceChunks(src, *n, trace.DefaultChunkRecords))
	} else {
		t, err := spec.Trace(*n)
		if err != nil {
			fail(err)
		}
		m = fetch.Run(engine, t)
	}
	p := metrics.Default()
	fmt.Printf("%s on %s\n", engine.Name(), spec.Name)
	fmt.Printf("  %s\n", m.Summary(p))
	fmt.Printf("  BEP breakdown: misfetch=%.3f mispredict=%.3f\n",
		m.MisfetchBEP(p), m.MispredictBEP(p))

	if *breakdown {
		fmt.Println("  per-kind (count, per-100-breaks):")
		for k := isa.CondBranch; k < isa.NumKinds; k++ {
			mf, mp := m.MisfetchByKind[k], m.MispredictByKind[k]
			fmt.Printf("    %-9s misfetch %9d (%5.2f)  mispredict %9d (%5.2f)\n",
				k, mf, 100*float64(mf)/float64(m.Breaks),
				mp, 100*float64(mp)/float64(m.Breaks))
		}
	}
}

func newPHT(kind string, size int) pht.Predictor {
	switch kind {
	case "gshare":
		return pht.NewGShare(size, 0)
	case "gas":
		return pht.NewGAs(size)
	case "bimodal":
		return pht.NewBimodal(size)
	case "1bit":
		return pht.NewOneBit(size)
	case "taken":
		return pht.Static{Taken: true}
	case "nottaken":
		return pht.Static{Taken: false}
	}
	fail(fmt.Errorf("unknown PHT kind %q", kind))
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "nlssim:", err)
	os.Exit(1)
}
