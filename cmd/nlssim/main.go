// Command nlssim runs a single workload through one fetch-architecture
// configuration and reports the paper's metrics (%MfB, %MpB, BEP, CPI,
// i-cache miss rate), optionally with a per-branch-kind breakdown and a
// per-branch penalty attribution.
//
// The -arch flag accepts either a registered architecture-spec name (run
// with -list to see them; e.g. nls-table-1024, btb-128, johnson), which
// selects the complete paper configuration, or a bare predictor kind
// (nls-table, nls-cache, btb, coupled-btb, johnson), which is assembled
// from the sizing flags.
//
// Usage:
//
//	nlssim -workload gcc -arch nls-table -entries 1024 -cache 16 -assoc 1
//	nlssim -workload li  -arch btb -entries 128 -assoc 4 -breakdown
//	nlssim -workload espresso -arch nls-table-1024          # registered spec
//	nlssim -workload gcc -arch btb-128 -json                # machine-readable
//	nlssim -workload gcc -arch nls-cache -attribute   # per-branch penalty causes
//	nlssim -workload espresso -h2p        # dir-wrong recovery, gshare vs TAGE-lite
//	nlssim -workload gcc -pht tage        # equal-cost TAGE-lite direction predictor
//	nlssim -workload gcc -n 50000000 -stream    # O(chunk) memory, no materialized trace
//	nlssim -workload li -trace-events out.json  # sim-time pipeline trace (Perfetto)
//
// The non-streaming path runs through the experiments pipeline as a
// single-cell grid: the result is keyed and stored in the same
// content-addressed store cmd/nlstables uses, so repeating a run (or
// re-running a figure that contains the same cell) loads it instead of
// re-simulating. -force re-simulates; -store "" disables the store; the
// -stream path always simulates (it exists to avoid materializing state).
//
// -attribute attaches the fetch frontend's probe and replays the workload
// once more (attribution is an event-stream product the counter store
// cannot serve), printing the per-branch cause table — or embedding it in
// the -json object. With -json, stdout carries exactly one JSON document;
// all diagnostics go to stderr. -cpuprofile/-memprofile write standard
// pprof profiles.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/arch"
	"repro/internal/experiments"
	"repro/internal/fetch"
	"repro/internal/isa"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/prof"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		wl          = flag.String("workload", "gcc", "workload name (doduc, espresso, gcc, li, cfront, groff)")
		n           = flag.Int("n", 1_000_000, "instructions to simulate")
		archName    = flag.String("arch", "nls-table", "registered spec name (see -list) or predictor kind: nls-table, nls-cache, btb, coupled-btb, johnson")
		entries     = flag.Int("entries", 1024, "NLS-table or BTB entries")
		perLine     = flag.Int("perline", 2, "NLS-cache predictors per line")
		cacheKB     = flag.Int("cache", 16, "instruction cache size in KB")
		assoc       = flag.Int("assoc", 1, "cache associativity (nls) or BTB associativity (btb)")
		phtKind     = flag.String("pht", "gshare", "direction predictor: gshare, gas, bimodal, 1bit, tage, taken, nottaken")
		phtSize     = flag.Int("phtsize", 4096, "PHT entries (tage uses the equal-cost DESIGN.md §13 sizing)")
		breakdown   = flag.Bool("breakdown", false, "print per-branch-kind misfetch/mispredict breakdown")
		attribute   = flag.Bool("attribute", false, "attach the fetch probe and report per-branch penalty attribution")
		h2p         = flag.Bool("h2p", false, "rank hard-to-predict branches: per-PC dir-wrong under the paper gshare vs the equal-cost TAGE-lite, on the selected architecture")
		stream      = flag.Bool("stream", false, "stream records straight from the executor in O(chunk) memory instead of materializing the trace")
		jsonOut     = flag.Bool("json", false, "emit the result as JSON on stdout")
		list        = flag.Bool("list", false, "list registered architecture specs and exit")
		force       = flag.Bool("force", false, "re-simulate even when the results store has the cell")
		storeDir    = flag.String("store", experiments.DefaultStoreDir(), "content-addressed results store directory (empty disables)")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile  = flag.String("memprofile", "", "write a heap profile to this file at exit")
		traceEvents = flag.String("trace-events", "", "write a sim-time Chrome trace-event JSON file (Perfetto-viewable) from a recorder-attached replay")
		traceSample = flag.Int("trace-sample", 64, "fetch-block accesses between trace counter samples")
		traceMax    = flag.Int("trace-max-events", 0, "trace event cap (0 = default)")
		version     = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println("nlssim", experiments.ReadBuildEnv())
		return
	}

	if *list {
		fmt.Println("architecture specs:")
		for _, name := range arch.Names() {
			s, _ := arch.Lookup(name)
			fmt.Printf("  %-20s %s\n", name, s.MustBuild().Name())
		}
		fmt.Println("pht kinds (-pht, or PHTSpec.Kind in a serve job):")
		for _, kind := range arch.PHTKinds() {
			fmt.Printf("  %s\n", kind)
		}
		fmt.Println("prefetcher kinds (PrefetchSpec.Kind in a serve job or spec document):")
		for _, kind := range arch.PrefetchKinds() {
			fmt.Printf("  %s\n", kind)
		}
		return
	}

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fail(err)
	}

	spec, ok := workload.ByName(*wl)
	if !ok {
		fail(fmt.Errorf("unknown workload %q", *wl))
	}

	s, ok := arch.Lookup(*archName)
	if !ok {
		// Not a registered name: assemble a spec from the sizing flags.
		s = specFromFlags(*archName, *entries, *perLine, *cacheKB, *assoc, *phtKind, *phtSize)
	}
	engine, err := s.Build()
	if err != nil {
		fail(err)
	}

	var m *metrics.Counters
	if *stream {
		// Drive the engine chunk by chunk from the executor: the same
		// records Trace(n) would materialize, never all resident.
		src, err := spec.Source()
		if err != nil {
			fail(err)
		}
		m = fetch.RunChunks(engine, trace.NewSourceChunks(src, *n, trace.DefaultChunkRecords))
	} else {
		m, err = runCell(spec, s, *n, *storeDir, *force)
		if err != nil {
			fail(err)
		}
	}
	p := metrics.Default()

	var reports []obs.Report
	if *attribute {
		if reports, err = attributionReports(spec, s, *n, engine.Name()); err != nil {
			fail(err)
		}
	}
	var ranks []obs.H2PRanking
	if *h2p {
		if ranks, err = h2pRankings(spec, s, *n); err != nil {
			fail(err)
		}
	}
	if *traceEvents != "" {
		if err := writeTraceEvents(spec, s, *n, *traceEvents, *traceSample, *traceMax); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "nlssim: trace events written to %s\n", *traceEvents)
	}

	if *jsonOut {
		emitJSON(engine, spec.Name, s, m, p, reports, ranks)
		check(stopProf())
		return
	}

	fmt.Printf("%s on %s\n", engine.Name(), spec.Name)
	fmt.Printf("  %s\n", m.Summary(p))
	fmt.Printf("  BEP breakdown: misfetch=%.3f mispredict=%.3f\n",
		m.MisfetchBEP(p), m.MispredictBEP(p))

	if *breakdown {
		fmt.Println("  per-kind (count, per-100-breaks):")
		for k := isa.CondBranch; k < isa.NumKinds; k++ {
			mf, mp := m.MisfetchByKind[k], m.MispredictByKind[k]
			fmt.Printf("    %-9s misfetch %9d (%5.2f)  mispredict %9d (%5.2f)\n",
				k, mf, m.Per100Breaks(mf), mp, m.Per100Breaks(mp))
		}
	}
	if *attribute {
		fmt.Print(obs.RenderReports(reports, p))
	}
	if *h2p {
		fmt.Print(obs.RenderH2P("H2P: dir-wrong recovery, gshare vs equal-cost TAGE-lite", ranks))
	}
	check(stopProf())
}

// h2pRankings replays the workload through the selected architecture twice —
// the paper gshare against the equal-cost TAGE-lite direction predictor
// (DESIGN.md §13), everything else identical — and ranks the branches by
// per-PC dir-wrong recovery. The selected spec's own PHT kind is
// overridden on both sides: the comparison is the predictor pair, not the
// -pht flag.
func h2pRankings(w workload.Spec, s arch.Spec, insns int) ([]obs.H2PRanking, error) {
	if s.PHT.Kind == "" || s.PHT.Kind == arch.PHTKindNone {
		return nil, fmt.Errorf("-h2p needs a decoupled-PHT architecture; %q couples its direction state", s.Predictor.Kind)
	}
	base, alt := s, s
	base.PHT = arch.PaperPHT()
	alt.PHT = arch.TAGEPHT()
	cfg := experiments.Config{
		Insns:     insns,
		Programs:  []workload.Spec{w},
		Penalties: metrics.Default(),
	}
	x := &experiments.Executor{R: experiments.NewRunner(cfg)}
	g := experiments.Grid{Name: "nlssim-h2p", Arms: []experiments.Arm{
		{Name: "gshare", Spec: base},
		{Name: "tage", Spec: alt},
	}}
	reports, err := x.RunAttribution(g, 0)
	if err != nil {
		return nil, err
	}
	return []obs.H2PRanking{obs.RankH2P(reports[0], reports[1], experiments.H2PTopN)}, nil
}

// runCell runs one (workload, spec) cell through the grid pipeline — a
// one-arm Grid whose arm keeps the spec's own cache geometry — so the
// result round-trips the same store as the figure harness.
func runCell(w workload.Spec, s arch.Spec, insns int, storeDir string, force bool) (*metrics.Counters, error) {
	cfg := experiments.Config{
		Insns:     insns,
		Programs:  []workload.Spec{w},
		Penalties: metrics.Default(),
	}
	x := &experiments.Executor{R: experiments.NewRunner(cfg), Force: force}
	if storeDir != "" {
		store, err := experiments.OpenStore(storeDir)
		if err != nil {
			return nil, err
		}
		x.Store = store
	}
	g := experiments.Grid{Name: "nlssim", Arms: []experiments.Arm{{Name: "cell", Spec: s}}}
	rs, err := x.RunGrids(false, g)
	if err != nil {
		return nil, err
	}
	m := rs.Rows(g)[0].M
	return &m, nil
}

// writeTraceEvents replays the workload once more through a fresh engine
// with a telemetry.SimRecorder attached and writes the sim-time trace-event
// document (DESIGN.md §15). Like attribution, the trace is an event-stream
// product the counter store cannot serve, so it costs its own replay; the
// recorder's seams guarantee the counters are bit-identical either way.
func writeTraceEvents(w workload.Spec, s arch.Spec, insns int, path string, sample, maxEvents int) error {
	engine, err := s.Build()
	if err != nil {
		return err
	}
	rec := telemetry.NewSimRecorder(telemetry.SimRecorderOptions{
		SampleEvery: sample, MaxEvents: maxEvents,
	})
	if err := rec.Attach(engine); err != nil {
		return err
	}
	src, err := w.Source()
	if err != nil {
		return err
	}
	fetch.RunChunks(engine, trace.NewSourceChunks(src, insns, trace.DefaultChunkRecords))
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rec.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// attributionReports replays the workload once through a probe-attached
// engine (a one-arm grid on the spec's own geometry) and returns the
// attribution report. The replay is separate from the metrics run: probe
// events are not stored, and the probe contract guarantees the counters
// are bit-identical either way.
func attributionReports(w workload.Spec, s arch.Spec, insns int, name string) ([]obs.Report, error) {
	cfg := experiments.Config{
		Insns:     insns,
		Programs:  []workload.Spec{w},
		Penalties: metrics.Default(),
	}
	x := &experiments.Executor{R: experiments.NewRunner(cfg)}
	g := experiments.Grid{Name: "nlssim-attribute",
		Arms: []experiments.Arm{{Name: name, Spec: s}}}
	return x.RunAttribution(g, experiments.AttributionTopN)
}

// specFromFlags assembles an ad-hoc spec for a bare predictor kind. The
// historical flag semantics are kept: for the BTB kinds, -assoc sizes the
// BTB (the i-cache stays direct-mapped); for the others it sizes the
// i-cache.
func specFromFlags(kind string, entries, perLine, cacheKB, assoc int, phtKind string, phtSize int) arch.Spec {
	s := arch.Spec{
		Cache:    arch.CacheSpec{SizeBytes: cacheKB * 1024, LineBytes: arch.LineBytes, Assoc: assoc},
		RASDepth: 32,
	}
	switch kind {
	case arch.KindNLSTable:
		s.Predictor = arch.PredictorSpec{Kind: kind, Entries: entries}
	case arch.KindNLSCache:
		s.Predictor = arch.PredictorSpec{Kind: kind, PerLine: perLine}
	case arch.KindBTB, arch.KindCoupledBTB:
		s.Predictor = arch.PredictorSpec{Kind: kind, Entries: entries, Assoc: assoc}
		s.Cache.Assoc = 1
	case arch.KindJohnson:
		s.Predictor = arch.PredictorSpec{Kind: kind}
	default:
		fail(fmt.Errorf("unknown architecture %q (registered: %s)",
			kind, strings.Join(arch.Names(), ", ")))
	}
	switch s.Predictor.Kind {
	case arch.KindCoupledBTB, arch.KindJohnson:
		// Coupled direction state: no decoupled PHT.
	default:
		s.PHT = phtSpecFromFlags(phtKind, phtSize)
	}
	return s
}

func phtSpecFromFlags(kind string, size int) arch.PHTSpec {
	switch kind {
	case "gshare":
		return arch.PHTSpec{Kind: "gshare", Entries: size}
	case "gas":
		return arch.PHTSpec{Kind: "gas", Entries: size}
	case "bimodal":
		return arch.PHTSpec{Kind: "bimodal", Entries: size}
	case "1bit":
		return arch.PHTSpec{Kind: "1bit", Entries: size}
	case "tage":
		// The equal-cost TAGE-lite sizing (DESIGN.md §13); -phtsize is
		// ignored — the table geometry is a matched set, not one knob.
		return arch.TAGEPHT()
	case "taken":
		return arch.PHTSpec{Kind: "static-taken"}
	case "nottaken":
		return arch.PHTSpec{Kind: "static-not-taken"}
	}
	fail(fmt.Errorf("unknown PHT kind %q", kind))
	return arch.PHTSpec{}
}

// emitJSON writes the run's configuration and headline metrics as one JSON
// object, so scripts consume results without scraping the report text.
func emitJSON(e fetch.Engine, workloadName string, s arch.Spec, m *metrics.Counters, p metrics.Penalties, reports []obs.Report, ranks []obs.H2PRanking) {
	out := struct {
		Engine   string    `json:"engine"`
		Workload string    `json:"workload"`
		Spec     arch.Spec `json:"spec"`
		Counters struct {
			Instructions uint64 `json:"instructions"`
			Breaks       uint64 `json:"breaks"`
			Misfetches   uint64 `json:"misfetches"`
			Mispredicts  uint64 `json:"mispredicts"`
			ICacheMisses uint64 `json:"icache_misses"`
		} `json:"counters"`
		BEP           float64          `json:"bep"`
		MisfetchBEP   float64          `json:"misfetch_bep"`
		MispredictBEP float64          `json:"mispredict_bep"`
		CPI           float64          `json:"cpi"`
		ICacheMiss    float64          `json:"icache_miss_rate"`
		Attribution   []obs.Report     `json:"attribution,omitempty"`
		H2P           []obs.H2PRanking `json:"h2p,omitempty"`
	}{
		Engine:        e.Name(),
		Workload:      workloadName,
		Spec:          s,
		BEP:           m.BEP(p),
		MisfetchBEP:   m.MisfetchBEP(p),
		MispredictBEP: m.MispredictBEP(p),
		CPI:           m.CPI(p),
		ICacheMiss:    m.ICacheMissRate(),
		Attribution:   reports,
		H2P:           ranks,
	}
	out.Counters.Instructions = m.Instructions
	out.Counters.Breaks = m.Breaks
	out.Counters.Misfetches = m.Misfetches
	out.Counters.Mispredicts = m.Mispredicts
	out.Counters.ICacheMisses = m.ICacheMisses
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fail(err)
	}
}

func check(err error) {
	if err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "nlssim:", err)
	os.Exit(1)
}
