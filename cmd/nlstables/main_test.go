package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// buildBinary compiles this command into dir and returns the binary path.
func buildBinary(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "nlstables")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestJSONStdoutPurity pins the -json contract: stdout carries exactly one
// JSON document (tables and diagnostics go to stderr), so
// `nlstables -json | jq` works. The run happens in a scratch directory, so
// the report, store, and manifest land there, not in the repo.
func TestJSONStdoutPurity(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real binary")
	}
	dir := t.TempDir()
	bin := buildBinary(t, dir)

	cmd := exec.Command(bin, "-json", "-only", "fig5", "-n", "30000")
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("nlstables: %v\nstderr:\n%s", err, stderr.String())
	}

	var rep struct {
		InsnsPerProgram int            `json:"insns_per_program"`
		Experiments     map[string]any `json:"experiments"`
	}
	dec := json.NewDecoder(bytes.NewReader(stdout.Bytes()))
	if err := dec.Decode(&rep); err != nil {
		t.Fatalf("stdout is not JSON: %v\nstdout:\n%s", err, stdout.String())
	}
	if dec.More() {
		t.Errorf("stdout carries more than one JSON document:\n%s", stdout.String())
	}
	if rep.InsnsPerProgram != 30000 || rep.Experiments["fig5"] == nil {
		t.Errorf("report shape wrong: %+v", rep)
	}
	// The tables and the wrote-file notices must be on stderr.
	if !bytes.Contains(stderr.Bytes(), []byte("Figure 5")) {
		t.Errorf("rendered table not on stderr:\n%s", stderr.String())
	}

	// The run manifest must exist and carry the schema marker.
	matches, err := filepath.Glob(filepath.Join(dir, "results", "runs", "*.json"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("want exactly one run manifest, got %v (err %v)", matches, err)
	}
	buf, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	var manifest struct {
		Schema string `json:"schema"`
		Cells  []any  `json:"cells"`
	}
	if err := json.Unmarshal(buf, &manifest); err != nil {
		t.Fatalf("manifest is not JSON: %v", err)
	}
	if manifest.Schema != "nls-run/v1" || len(manifest.Cells) == 0 {
		t.Errorf("manifest shape wrong: schema=%q cells=%d", manifest.Schema, len(manifest.Cells))
	}
}
