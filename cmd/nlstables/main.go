// Command nlstables regenerates every table and figure of the paper from
// the benchmark-analogue workloads — Table 1 and Figures 3–8 — plus the
// repo's ablations (predictors per line, coupled vs decoupled designs,
// direction-predictor choice, fetch width, wrong-path pollution, the
// hybrid NLS+BTB predictor, the per-branch penalty attribution, and the
// h2p dir-wrong recovery ranking). This is the harness behind
// EXPERIMENTS.md.
//
// Usage:
//
//	nlstables [-n insns] [-only figure] [-force] [-progress] [-json] [-store dir]
//	          [-manifest dir] [-cpuprofile f] [-memprofile f]
//
// The figures are declarative grids over one executor (see package
// experiments): the run gathers every requested cell, loads unchanged ones
// from the content-addressed store under -store, and replays each
// program's trace exactly once for all remaining cells. -only restricts
// the run to one figure; -force re-simulates even stored cells; -store ""
// disables the store entirely. The attribution figure is special: it
// replays probe-attached engines itself (the store holds counters, not
// event streams).
//
// With -json, the machine-readable report — the rows behind each rendered
// table plus the run's sweep-throughput stats — is the ONLY thing printed
// to stdout (the ASCII tables move to stderr with the other diagnostics,
// so `nlstables -json | jq` just works), and the same report is written to
// results/<exp>.json.
//
// Every run also writes a run manifest (schema nls-run/v1) under -manifest
// (default results/runs/): store hits/misses, cells deduped across
// figures, replay throughput, per-cell engine wall time, and the Go build
// info — the telemetry record for tracking performance trajectories
// across commits. -manifest "" disables it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/experiments"
	"repro/internal/prof"
)

// report is the -json output: one entry per experiment run, keyed by
// experiment name, plus the replay throughput of the run.
type report struct {
	InsnsPerProgram int            `json:"insns_per_program"`
	Experiments     map[string]any `json:"experiments"`
	Sweep           sweepReport    `json:"sweep_throughput"`
}

type sweepReport struct {
	Cells      int     `json:"cells"`
	Records    int64   `json:"records"`
	Seconds    float64 `json:"seconds"`
	RecPerSec  float64 `json:"records_per_sec"`
	MrecPerSec float64 `json:"mrec_per_sec"`
	// Loaded counts cells served by the content-addressed store; Replays
	// counts program traces actually replayed (0 on a fully warm run).
	Loaded  int `json:"cells_loaded"`
	Replays int `json:"trace_replays"`
}

func main() {
	var (
		n           = flag.Int("n", 2_000_000, "instructions to simulate per program")
		exp         = flag.String("exp", "all", "experiment to run (alias of -only; 'all' runs every figure)")
		only        = flag.String("only", "", "run a single figure: table1, fig3..fig8, perline, coupled, pht, width, pollution, hybrid, attribution, h2p")
		force       = flag.Bool("force", false, "re-simulate cells even when the results store has them")
		progress    = flag.Bool("progress", false, "print sweep progress (cells completed, replay throughput) to stderr")
		jsonOut     = flag.Bool("json", false, "print the machine-readable report to stdout (tables move to stderr) and write it to results/<exp>.json")
		storeDir    = flag.String("store", experiments.DefaultStoreDir(), "content-addressed results store directory (empty disables)")
		corpusDir   = flag.String("corpus", experiments.DefaultCorpusDir(), "disk-backed trace corpus directory: the first run generates traces once into a content-keyed container, later runs replay from disk (empty disables)")
		manifestDir = flag.String("manifest", experiments.DefaultManifestDir(), "run-manifest directory (empty disables)")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile  = flag.String("memprofile", "", "write a heap profile to this file at exit")
		version     = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println("nlstables", experiments.ReadBuildEnv())
		return
	}

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	check(err)

	sel := *exp
	if *only != "" {
		sel = *only
	}
	var figs []experiments.Figure
	if sel == "all" {
		figs = experiments.Figures()
	} else {
		f, ok := experiments.FigureByName(sel)
		if !ok {
			names := make([]string, 0, len(experiments.Figures()))
			for _, f := range experiments.Figures() {
				names = append(names, f.Name)
			}
			fmt.Fprintf(os.Stderr, "nlstables: unknown experiment %q (have %s, all)\n",
				sel, strings.Join(names, ", "))
			os.Exit(2)
		}
		figs = []experiments.Figure{f}
	}

	r := experiments.NewRunner(experiments.DefaultConfig(*n))
	if *progress {
		r.Progress = func(s experiments.SweepStats) {
			fmt.Fprintf(os.Stderr, "  sweep: %d/%d cells, %.1fM records replayed, %.1f Mrec/s\n",
				s.Cells, s.TotalCells, float64(s.Records)/1e6, s.RecordsPerSec()/1e6)
		}
	}
	x := &experiments.Executor{R: r, Force: *force, CorpusDir: *corpusDir}
	if *storeDir != "" {
		store, err := experiments.OpenStore(*storeDir)
		check(err)
		x.Store = store
	}

	rs, err := x.Run(figs...)
	check(err)

	// With -json, stdout carries exactly one JSON document; the rendered
	// tables join the diagnostics on stderr.
	tables := os.Stdout
	if *jsonOut {
		tables = os.Stderr
	}
	rep := report{InsnsPerProgram: *n, Experiments: map[string]any{}}
	figNames := make([]string, len(figs))
	for i, f := range figs {
		figNames[i] = f.Name
		text, data, err := x.RenderFigure(f, rs)
		check(err)
		fmt.Fprintln(tables, text)
		rep.Experiments[f.Name] = data
	}

	if *jsonOut {
		s := r.LastSweepStats()
		rep.Sweep = sweepReport{
			Cells:      s.Cells,
			Records:    s.Records,
			Seconds:    s.Elapsed.Seconds(),
			RecPerSec:  s.RecordsPerSec(),
			MrecPerSec: s.RecordsPerSec() / 1e6,
			Loaded:     s.Loaded,
			Replays:    s.Replays,
		}
		check(writeReport(rep, sel))
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		check(enc.Encode(rep))
	}

	if *manifestDir != "" {
		m := experiments.NewRunManifest(x, rs, figNames, os.Args)
		path, err := m.Write(*manifestDir)
		check(err)
		fmt.Fprintf(os.Stderr, "nlstables: wrote %s\n", path)
	}
	check(stopProf())
}

// writeReport writes the JSON report to results/<exp>.json.
func writeReport(rep report, exp string) error {
	if err := os.MkdirAll("results", 0o755); err != nil {
		return err
	}
	path := filepath.Join("results", exp+".json")
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "nlstables: wrote %s\n", path)
	return nil
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "nlstables:", err)
		os.Exit(1)
	}
}
