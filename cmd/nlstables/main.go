// Command nlstables regenerates every table and figure of the paper from
// the benchmark-analogue workloads: Table 1 and Figures 3–8. This is the
// harness behind EXPERIMENTS.md.
//
// Usage:
//
//	nlstables [-n insns] [-exp table1|fig3|fig4|fig5|fig6|fig7|fig8|all] [-progress]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	var (
		n        = flag.Int("n", 2_000_000, "instructions to simulate per program")
		exp      = flag.String("exp", "all", "experiment: table1, fig3..fig8, perline, coupled, pht, or all")
		progress = flag.Bool("progress", false, "print sweep progress (cells completed, replay throughput) to stderr")
	)
	flag.Parse()

	r := experiments.NewRunner(experiments.DefaultConfig(*n))
	if *progress {
		r.Progress = func(s experiments.SweepStats) {
			fmt.Fprintf(os.Stderr, "  sweep: %d/%d cells, %.1fM records replayed, %.1f Mrec/s\n",
				s.Cells, s.TotalCells, float64(s.Records)/1e6, s.RecordsPerSec()/1e6)
		}
	}

	run := func(name string) {
		switch name {
		case "table1":
			out, err := r.Table1()
			check(err)
			fmt.Println("Table 1: measured attributes of the traced programs")
			fmt.Println(out)
		case "fig3":
			fmt.Println(experiments.RenderFig3(experiments.Fig3()))
		case "fig4":
			avgs, err := r.Fig4()
			check(err)
			fmt.Println(experiments.RenderAverages(
				"Figure 4: average BEP, NLS-cache vs NLS-table", avgs))
		case "fig5":
			avgs, err := r.Fig5()
			check(err)
			fmt.Println(experiments.RenderAverages(
				"Figure 5: average BEP, BTB vs 1024 NLS-table", avgs))
		case "fig6":
			fmt.Println(experiments.RenderFig6(experiments.Fig6()))
		case "fig7":
			byProg, err := r.Fig7()
			check(err)
			fmt.Println(experiments.RenderFig7(r, byProg))
		case "fig8":
			avgs, err := r.Fig8()
			check(err)
			fmt.Println(experiments.RenderCPI(avgs))
		case "perline":
			avgs, err := r.PerLineSweep()
			check(err)
			fmt.Println(experiments.RenderAverages(
				"Ablation: NLS-cache predictors per line (§5.1)", avgs))
		case "coupled":
			avgs, err := r.CoupledSweep()
			check(err)
			fmt.Println(experiments.RenderAverages(
				"Ablation: decoupled vs coupled designs (§2, §6.2)", avgs))
		case "pht":
			rows, err := r.PHTSweep()
			check(err)
			fmt.Println(experiments.RenderPHTSweep(rows))
		case "width":
			rows, err := r.WidthSweep()
			check(err)
			fmt.Println(experiments.RenderWidthSweep(rows))
		case "pollution":
			rows, err := r.PollutionSweep()
			check(err)
			fmt.Println(experiments.RenderPollutionSweep(rows, r.Cfg.Penalties))
		default:
			fmt.Fprintf(os.Stderr, "nlstables: unknown experiment %q\n", name)
			os.Exit(2)
		}
	}

	if *exp == "all" {
		for _, e := range []string{"table1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
			"perline", "coupled", "pht", "width", "pollution"} {
			run(e)
		}
		return
	}
	run(*exp)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "nlstables:", err)
		os.Exit(1)
	}
}
