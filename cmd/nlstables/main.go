// Command nlstables regenerates every table and figure of the paper from
// the benchmark-analogue workloads — Table 1 and Figures 3–8 — plus the
// repo's ablations (predictors per line, coupled vs decoupled designs,
// direction-predictor choice, fetch width, wrong-path pollution). This is
// the harness behind EXPERIMENTS.md.
//
// Usage:
//
//	nlstables [-n insns] [-exp table1|fig3|fig4|fig5|fig6|fig7|fig8|perline|coupled|pht|width|pollution|all] [-progress] [-json]
//
// With -json, the rows behind each rendered table are also written as a
// machine-readable report to results/<exp>.json (per-figure rows plus the
// final sweep-throughput stats), so downstream tooling can track result
// and performance trajectories without scraping the ASCII tables.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/experiments"
)

// report is the -json output: one entry per experiment run, keyed by
// experiment name, plus the replay throughput of the final sweep.
type report struct {
	InsnsPerProgram int            `json:"insns_per_program"`
	Experiments     map[string]any `json:"experiments"`
	Sweep           sweepReport    `json:"sweep_throughput"`
}

type sweepReport struct {
	Cells      int     `json:"cells"`
	Records    int64   `json:"records"`
	Seconds    float64 `json:"seconds"`
	RecPerSec  float64 `json:"records_per_sec"`
	MrecPerSec float64 `json:"mrec_per_sec"`
}

// avgRow flattens experiments.Average for JSON (cache.Geometry renders as
// its display string).
type avgRow struct {
	Arch     string  `json:"arch"`
	Cache    string  `json:"cache"`
	MfBEP    float64 `json:"misfetch_bep"`
	MpBEP    float64 `json:"mispredict_bep"`
	BEP      float64 `json:"bep"`
	CPI      float64 `json:"cpi"`
	MissRate float64 `json:"icache_miss_rate"`
}

func avgRows(avgs []experiments.Average) []avgRow {
	rows := make([]avgRow, len(avgs))
	for i, a := range avgs {
		rows[i] = avgRow{
			Arch: a.Arch, Cache: a.Cache.String(),
			MfBEP: a.MfBEP, MpBEP: a.MpBEP, BEP: a.BEP(),
			CPI: a.CPI, MissRate: a.MissRate,
		}
	}
	return rows
}

// resultRow flattens experiments.Result for JSON.
type resultRow struct {
	Program string  `json:"program"`
	Arch    string  `json:"arch"`
	Cache   string  `json:"cache"`
	MfBEP   float64 `json:"misfetch_bep"`
	MpBEP   float64 `json:"mispredict_bep"`
	BEP     float64 `json:"bep"`
}

func main() {
	var (
		n        = flag.Int("n", 2_000_000, "instructions to simulate per program")
		exp      = flag.String("exp", "all", "experiment: table1, fig3..fig8, perline, coupled, pht, width, pollution, or all")
		progress = flag.Bool("progress", false, "print sweep progress (cells completed, replay throughput) to stderr")
		jsonOut  = flag.Bool("json", false, "also write machine-readable rows to results/<exp>.json")
	)
	flag.Parse()

	r := experiments.NewRunner(experiments.DefaultConfig(*n))
	if *progress {
		r.Progress = func(s experiments.SweepStats) {
			fmt.Fprintf(os.Stderr, "  sweep: %d/%d cells, %.1fM records replayed, %.1f Mrec/s\n",
				s.Cells, s.TotalCells, float64(s.Records)/1e6, s.RecordsPerSec()/1e6)
		}
	}

	rep := report{InsnsPerProgram: *n, Experiments: map[string]any{}}

	run := func(name string) {
		switch name {
		case "table1":
			out, err := r.Table1()
			check(err)
			fmt.Println("Table 1: measured attributes of the traced programs")
			fmt.Println(out)
			rep.Experiments[name] = out
		case "fig3":
			rows := experiments.Fig3()
			fmt.Println(experiments.RenderFig3(rows))
			rep.Experiments[name] = rows
		case "fig4":
			avgs, err := r.Fig4()
			check(err)
			fmt.Println(experiments.RenderAverages(
				"Figure 4: average BEP, NLS-cache vs NLS-table", avgs))
			rep.Experiments[name] = avgRows(avgs)
		case "fig5":
			avgs, err := r.Fig5()
			check(err)
			fmt.Println(experiments.RenderAverages(
				"Figure 5: average BEP, BTB vs 1024 NLS-table", avgs))
			rep.Experiments[name] = avgRows(avgs)
		case "fig6":
			rows := experiments.Fig6()
			fmt.Println(experiments.RenderFig6(rows))
			rep.Experiments[name] = rows
		case "fig7":
			byProg, err := r.Fig7()
			check(err)
			fmt.Println(experiments.RenderFig7(r, byProg))
			p := r.Cfg.Penalties
			rows := map[string][]resultRow{}
			for prog, results := range byProg {
				for _, res := range results {
					rows[prog] = append(rows[prog], resultRow{
						Program: res.Program, Arch: res.Arch, Cache: res.Cache.String(),
						MfBEP: res.M.MisfetchBEP(p), MpBEP: res.M.MispredictBEP(p),
						BEP: res.M.BEP(p),
					})
				}
			}
			rep.Experiments[name] = rows
		case "fig8":
			avgs, err := r.Fig8()
			check(err)
			fmt.Println(experiments.RenderCPI(avgs))
			rep.Experiments[name] = avgRows(avgs)
		case "perline":
			avgs, err := r.PerLineSweep()
			check(err)
			fmt.Println(experiments.RenderAverages(
				"Ablation: NLS-cache predictors per line (§5.1)", avgs))
			rep.Experiments[name] = avgRows(avgs)
		case "coupled":
			avgs, err := r.CoupledSweep()
			check(err)
			fmt.Println(experiments.RenderAverages(
				"Ablation: decoupled vs coupled designs (§2, §6.2)", avgs))
			rep.Experiments[name] = avgRows(avgs)
		case "pht":
			rows, err := r.PHTSweep()
			check(err)
			fmt.Println(experiments.RenderPHTSweep(rows))
			rep.Experiments[name] = rows
		case "width":
			rows, err := r.WidthSweep()
			check(err)
			fmt.Println(experiments.RenderWidthSweep(rows))
			rep.Experiments[name] = rows
		case "pollution":
			rows, err := r.PollutionSweep()
			check(err)
			fmt.Println(experiments.RenderPollutionSweep(rows, r.Cfg.Penalties))
			rep.Experiments[name] = rows
		default:
			fmt.Fprintf(os.Stderr, "nlstables: unknown experiment %q\n", name)
			os.Exit(2)
		}
	}

	if *exp == "all" {
		for _, e := range []string{"table1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
			"perline", "coupled", "pht", "width", "pollution"} {
			run(e)
		}
	} else {
		run(*exp)
	}

	if *jsonOut {
		s := r.LastSweepStats()
		rep.Sweep = sweepReport{
			Cells:      s.Cells,
			Records:    s.Records,
			Seconds:    s.Elapsed.Seconds(),
			RecPerSec:  s.RecordsPerSec(),
			MrecPerSec: s.RecordsPerSec() / 1e6,
		}
		check(writeReport(rep, *exp))
	}
}

// writeReport writes the JSON report to results/<exp>.json.
func writeReport(rep report, exp string) error {
	if err := os.MkdirAll("results", 0o755); err != nil {
		return err
	}
	path := filepath.Join("results", exp+".json")
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "nlstables: wrote %s\n", path)
	return nil
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "nlstables:", err)
		os.Exit(1)
	}
}
