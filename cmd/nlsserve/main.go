// Command nlsserve is the concurrent sweep service: a long-running HTTP
// server that accepts grid/arch-spec jobs as JSON, schedules them on a
// bounded worker pool over the shared-replay executor, and serves results
// from the content-addressed cell store with single-flight dedup — N
// concurrent identical requests cost one simulation, and a warm
// re-request is byte-identical to the cold response. See DESIGN.md §12
// and EXPERIMENTS.md "Serving sweeps".
//
// Usage:
//
//	nlsserve [-addr host:port] [-store dir] [-workers n] [-queue n]
//	         [-max-insns n] [-max-cells n] [-max-body bytes]
//	         [-drain-timeout d] [-smoke]
//
// Endpoints: POST /v1/jobs (add ?stream=1 for ndjson progress),
// GET /healthz, GET /statsz (JSON counters), GET /metricsz (the same
// counters plus latency histograms, Prometheus text format). Requests are
// logged to stderr via log/slog with per-job IDs.
//
// SIGINT/SIGTERM triggers a graceful shutdown: new jobs get 503, accepted
// jobs drain to completion (bounded by -drain-timeout), then the listener
// closes.
//
// -smoke runs the CI self-test instead of serving: it starts the server
// on a loopback port with a temporary store, POSTs a tiny one-cell job
// twice, verifies the second (warm) response is served from the store
// byte-identical to the first (cold) one, and cross-checks /metricsz
// against /statsz — the same counters through both exposition paths.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8372", "listen address")
		storeDir     = flag.String("store", experiments.DefaultStoreDir(), "content-addressed results store directory (empty disables caching)")
		corpusDir    = flag.String("corpus", experiments.DefaultCorpusDir(), "disk-backed trace corpus directory: the first job of a configuration generates traces once, later jobs replay from disk (empty disables)")
		workers      = flag.Int("workers", 0, "executor pool size (0 = GOMAXPROCS)")
		queue        = flag.Int("queue", 64, "accepted-but-not-running job bound (beyond it: 503)")
		maxInsns     = flag.Int("max-insns", 0, "per-program instruction budget cap (0 = default)")
		maxCells     = flag.Int("max-cells", 0, "per-job cell cap (0 = default)")
		maxBody      = flag.Int64("max-body", 0, "request body byte cap (0 = default)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown drain bound")
		smoke        = flag.Bool("smoke", false, "run the cold/warm byte-identity self-test and exit")
		version      = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println("nlsserve", experiments.ReadBuildEnv())
		return
	}

	if *smoke {
		if err := runSmoke(*workers); err != nil {
			fmt.Fprintln(os.Stderr, "nlsserve: smoke FAILED:", err)
			os.Exit(1)
		}
		fmt.Println("nlsserve: smoke ok")
		return
	}

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	srv, err := newServer(*storeDir, *corpusDir, *workers, *queue, *maxInsns, *maxCells, *maxBody, logger)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nlsserve:", err)
		os.Exit(1)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "nlsserve: listening on %s (store %q)\n", *addr, *storeDir)
		errc <- httpSrv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "nlsserve:", err)
		os.Exit(1)
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "nlsserve: %s; draining (up to %s)\n", sig, *drainTimeout)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "nlsserve: drain incomplete:", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "nlsserve: listener shutdown:", err)
	}
	fmt.Fprintln(os.Stderr, "nlsserve: stopped")
}

func newServer(storeDir, corpusDir string, workers, queue, maxInsns, maxCells int, maxBody int64, logger *slog.Logger) (*serve.Server, error) {
	opts := serve.Options{
		CorpusDir:  corpusDir,
		Workers:    workers,
		QueueDepth: queue,
		Limits:     serve.Limits{MaxBodyBytes: maxBody, MaxInsns: maxInsns, MaxCells: maxCells},
		Logger:     logger,
	}
	if storeDir != "" {
		store, err := experiments.OpenStore(storeDir)
		if err != nil {
			return nil, err
		}
		opts.Store = store
	}
	return serve.New(opts), nil
}

// smokeJob is the self-test request: one cell (one program, one arm, the
// registered 16KB direct-mapped NLS-table) at a budget small enough for CI.
const smokeJob = `{
  "schema": "nls-job/v1",
  "insns": 100000,
  "programs": ["li"],
  "grid": {
    "name": "smoke",
    "arms": [
      {
        "name": "1024 NLS-table",
        "spec": {
          "predictor": {"kind": "nls-table", "entries": 1024},
          "cache": {"size_bytes": 16384, "line_bytes": 32, "assoc": 1},
          "pht": {"kind": "gshare", "entries": 4096, "history_bits": 6}
        }
      }
    ]
  }
}`

// runSmoke starts the service on a loopback listener with a throwaway
// store, POSTs smokeJob cold and then warm, and asserts the contract the
// service exists for: 200 on both, the warm response served from the
// store, and the two bodies byte-identical.
func runSmoke(workers int) error {
	storeDir, err := os.MkdirTemp("", "nlsserve-smoke-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(storeDir)

	srv, err := newServer(storeDir, storeDir+"/corpus", workers, 16, 0, 0, 0, nil)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()

	post := func() (int, []byte, http.Header, error) {
		resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader([]byte(smokeJob)))
		if err != nil {
			return 0, nil, nil, err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		return resp.StatusCode, body, resp.Header, err
	}

	status, cold, hdr, err := post()
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("cold POST: status %d: %s", status, cold)
	}
	if hdr.Get("X-NLS-Cells-Simulated") != "1" {
		return fmt.Errorf("cold POST: simulated %q cells, want 1", hdr.Get("X-NLS-Cells-Simulated"))
	}

	status, warm, hdr, err := post()
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("warm POST: status %d: %s", status, warm)
	}
	if hdr.Get("X-NLS-Cells-Loaded") != "1" {
		return fmt.Errorf("warm POST: loaded %q cells, want 1 (not served from store)", hdr.Get("X-NLS-Cells-Loaded"))
	}
	if !bytes.Equal(cold, warm) {
		return errors.New("warm response differs from cold response")
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz: status %d", resp.StatusCode)
	}

	if err := checkMetricsz(base); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "nlsserve: smoke: cold+warm OK, %d-byte body byte-identical, /metricsz consistent with /statsz\n", len(cold))
	return nil
}

// checkMetricsz scrapes /metricsz and /statsz at a quiescent moment (both
// smoke jobs finished) and asserts the exposition contract: valid
// Prometheus text format, and every counter /statsz reports carried
// verbatim — the two endpoints are views over the same registry, so any
// divergence is a bug.
func checkMetricsz(base string) error {
	resp, err := http.Get(base + "/metricsz")
	if err != nil {
		return err
	}
	promBody, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("metricsz: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		return fmt.Errorf("metricsz: content-type %q", ct)
	}
	prom, err := parseProm(promBody)
	if err != nil {
		return fmt.Errorf("metricsz: %w", err)
	}

	resp, err = http.Get(base + "/statsz")
	if err != nil {
		return err
	}
	var stats map[string]any
	err = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("statsz: %w", err)
	}

	for statKey, promKey := range map[string]string{
		"jobs_received":   "nls_jobs_received_total",
		"flights_led":     "nls_flights_led_total",
		"flights_shared":  "nls_flights_shared_total",
		"cells_loaded":    "nls_cells_loaded_total",
		"cells_simulated": "nls_cells_simulated_total",
		"trace_replays":   "nls_trace_replays_total",
		"inflight_jobs":   "nls_inflight_jobs",
	} {
		want, ok := stats[statKey].(float64)
		if !ok {
			return fmt.Errorf("statsz: missing %q", statKey)
		}
		got, ok := prom[promKey]
		if !ok {
			return fmt.Errorf("metricsz: missing %q", promKey)
		}
		if got != want {
			return fmt.Errorf("metricsz %s=%g disagrees with statsz %s=%g", promKey, got, statKey, want)
		}
	}
	// The smoke run led two flights; each must have a latency observation.
	if got := prom["nls_job_seconds_count"]; got != prom["nls_flights_led_total"] {
		return fmt.Errorf("nls_job_seconds_count=%g, want one per led flight (%g)",
			got, prom["nls_flights_led_total"])
	}
	return nil
}

// parseProm reads Prometheus text exposition into a flat
// series-with-labels -> value map.
func parseProm(body []byte) (map[string]float64, error) {
	out := make(map[string]float64)
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			return nil, fmt.Errorf("malformed exposition line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("malformed value in %q: %w", line, err)
		}
		out[line[:i]] = v
	}
	return out, nil
}
