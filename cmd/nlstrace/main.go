// Command nlstrace generates, saves, loads, and summarizes instruction
// traces of the benchmark-analogue workloads. Its default output is the
// reproduction of the paper's Table 1 ("Measured attributes of the traced
// programs") for the generated traces.
//
// Usage:
//
//	nlstrace [-n insns] [-workload name|all] [-out trace.nlst]
//	nlstrace -in trace.nlst
//	nlstrace -list
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		n       = flag.Int("n", 1_000_000, "instructions to trace per workload")
		name    = flag.String("workload", "all", "workload name (doduc, espresso, gcc, li, cfront, groff) or 'all'")
		out     = flag.String("out", "", "write the generated trace to this file (single workload only)")
		in      = flag.String("in", "", "read a trace from this file and summarize it")
		list    = flag.Bool("list", false, "list available workloads")
		doCheck = flag.Bool("validate", false, "validate trace chaining invariants (slower)")
	)
	flag.Parse()

	if *list {
		for _, s := range workload.All() {
			p, err := s.Program()
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%-15s procs=%d blocks=%d code=%dKB static-cond=%d\n",
				s.Name, len(p.Procs), p.NumBlocks(), p.CodeBytes()/1024, p.StaticCondSites())
		}
		return
	}

	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		t, err := trace.Read(f)
		if err != nil {
			fatal(err)
		}
		if *doCheck {
			if err := t.Validate(); err != nil {
				fatal(err)
			}
		}
		fmt.Println(trace.FormatTable([]*trace.Stats{trace.ComputeStats(t)}))
		return
	}

	specs := workload.All()
	if *name != "all" {
		s, ok := workload.ByName(*name)
		if !ok {
			fatal(fmt.Errorf("unknown workload %q", *name))
		}
		specs = []workload.Spec{s}
	}

	var rows []*trace.Stats
	for _, s := range specs {
		t, err := s.Trace(*n)
		if err != nil {
			fatal(err)
		}
		if *doCheck {
			if err := t.Validate(); err != nil {
				fatal(fmt.Errorf("%s: %w", s.Name, err))
			}
		}
		rows = append(rows, trace.ComputeStats(t))
		if *out != "" {
			if len(specs) != 1 {
				fatal(fmt.Errorf("-out requires a single -workload"))
			}
			f, err := os.Create(*out)
			if err != nil {
				fatal(err)
			}
			if err := trace.Write(f, t); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s (%d records)\n", *out, t.Len())
		}
	}
	fmt.Println(trace.FormatTable(rows))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nlstrace:", err)
	os.Exit(1)
}
