package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	b, ok := parseLine("BenchmarkSweepBroadcast-8   \t       3\t 412345678 ns/op\t  73.9 Mstep/s\t 1024 B/op\t      12 allocs/op")
	if !ok {
		t.Fatal("line did not parse")
	}
	if b.Name != "SweepBroadcast" || b.Procs != 8 || b.Iterations != 3 {
		t.Errorf("header fields: %+v", b)
	}
	want := map[string]float64{"ns/op": 412345678, "Mstep/s": 73.9, "B/op": 1024, "allocs/op": 12}
	for unit, v := range want {
		if b.Metrics[unit] != v {
			t.Errorf("metric %s = %v, want %v", unit, b.Metrics[unit], v)
		}
	}

	// Subbenchmark names keep their path; no -P suffix means procs=1.
	b, ok = parseLine("BenchmarkEngines/NLSCache 1000000 74.1 ns/op")
	if !ok || b.Name != "Engines/NLSCache" || b.Procs != 1 {
		t.Errorf("subbenchmark: ok=%v %+v", ok, b)
	}

	for _, bad := range []string{
		"",
		"goos: linux",
		"PASS",
		"ok  \trepro\t12.3s",
		"BenchmarkBroken abc 1 ns/op",
		"BenchmarkNoMetrics-4 12",
	} {
		if _, ok := parseLine(bad); ok {
			t.Errorf("parsed non-result line %q", bad)
		}
	}
}

func benchWith(name string, mstep float64) Benchmark {
	return Benchmark{Name: name, Procs: 1, Iterations: 1,
		Metrics: map[string]float64{"Mstep/s": mstep, "ns/op": 1e9 / mstep}}
}

func TestCompare(t *testing.T) {
	old := File{Schema: Schema, Benchmarks: []Benchmark{
		benchWith("SweepBroadcast", 100),
		benchWith("SweepPerCell", 50),
		benchWith("Vanished", 10),
	}}

	// Within tolerance (and improvements) pass; >10% loss fails.
	cur := File{Schema: Schema, Benchmarks: []Benchmark{
		benchWith("SweepBroadcast", 91), // -9%: inside the 10% band
		benchWith("SweepPerCell", 44),   // -12%: regression
		benchWith("Fresh", 5),           // no baseline: reported, not failed
	}}
	report, regressed := compare(old, cur, 0.10)
	if len(regressed) != 1 || regressed[0] != "SweepPerCell" {
		t.Errorf("regressed = %v, want [SweepPerCell]", regressed)
	}
	// One line per current benchmark plus one for the vanished baseline.
	if len(report) != 4 {
		t.Errorf("report has %d lines, want 4: %v", len(report), report)
	}

	// Exactly at the threshold is not a regression (strictly below fails).
	_, regressed = compare(old, File{Schema: Schema,
		Benchmarks: []Benchmark{benchWith("SweepBroadcast", 90)}}, 0.10)
	if len(regressed) != 0 {
		t.Errorf("exact -10%% flagged as regression: %v", regressed)
	}

	// A benchmark without an Mstep/s metric never regresses.
	oldNs := File{Schema: Schema, Benchmarks: []Benchmark{{
		Name: "Parse", Procs: 1, Metrics: map[string]float64{"ns/op": 100}}}}
	curNs := File{Schema: Schema, Benchmarks: []Benchmark{{
		Name: "Parse", Procs: 1, Metrics: map[string]float64{"ns/op": 500}}}}
	if _, regressed = compare(oldNs, curNs, 0.10); len(regressed) != 0 {
		t.Errorf("ns/op-only benchmark flagged: %v", regressed)
	}
}

// TestCompareOneSided: benchmarks present in only one file are reported
// with their metric values — a new benchmark shows what it measured, a
// vanished one shows the baseline it left behind — and neither fails the
// comparison.
func TestCompareOneSided(t *testing.T) {
	old := File{Schema: Schema, Benchmarks: []Benchmark{
		benchWith("Stays", 100),
		{Name: "Vanished", Procs: 4, Iterations: 1,
			Metrics: map[string]float64{"Mstep/s": 10, "ns/op": 250}},
	}}
	cur := File{Schema: Schema, Benchmarks: []Benchmark{
		benchWith("Stays", 100),
		{Name: "Fresh", Procs: 1, Iterations: 1,
			Metrics: map[string]float64{"Mstep/s": 5.5, "allocs/op": 3}},
		{Name: "Bare", Procs: 1, Iterations: 1},
	}}

	report, regressed := compare(old, cur, 0.10)
	if len(regressed) != 0 {
		t.Errorf("one-sided benchmarks regressed the comparison: %v", regressed)
	}

	want := []string{
		// Units in sorted order, values included.
		"Fresh: new benchmark (no baseline): Mstep/s 5.5, allocs/op 3",
		"Bare: new benchmark (no baseline): no metrics",
		"Vanished-4: missing from this run (baseline was Mstep/s 10, ns/op 250)",
	}
	for _, w := range want {
		found := false
		for _, l := range report {
			if l == w {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("report %v\nmissing line %q", report, w)
		}
	}
}

// TestFileDeterministic: the written document is a pure function of the
// benchmark text — no timestamps, stable key order — so re-running `make
// bench` with identical results leaves BENCH_sweep.json byte-identical.
func TestFileDeterministic(t *testing.T) {
	mk := func() File {
		f := File{Schema: Schema, GoVersion: "go1.24.0", Goos: "linux"}
		b, ok := parseLine("BenchmarkSweepBroadcast \t1\t 2791835170 ns/op\t 103.2 Mstep/s\t 3635072 B/op\t 4788 allocs/op")
		if !ok {
			t.Fatal("result line did not parse")
		}
		f.Benchmarks = append(f.Benchmarks, b)
		return f
	}
	a, err := json.MarshalIndent(mk(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.MarshalIndent(mk(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Errorf("identical input marshalled differently:\n%s\nvs\n%s", a, b)
	}
	if strings.Contains(string(a), "created_at") {
		t.Errorf("document carries a timestamp:\n%s", a)
	}
}
