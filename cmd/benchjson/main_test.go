package main

import "testing"

func TestParseLine(t *testing.T) {
	b, ok := parseLine("BenchmarkSweepBroadcast-8   \t       3\t 412345678 ns/op\t  73.9 Mstep/s\t 1024 B/op\t      12 allocs/op")
	if !ok {
		t.Fatal("line did not parse")
	}
	if b.Name != "SweepBroadcast" || b.Procs != 8 || b.Iterations != 3 {
		t.Errorf("header fields: %+v", b)
	}
	want := map[string]float64{"ns/op": 412345678, "Mstep/s": 73.9, "B/op": 1024, "allocs/op": 12}
	for unit, v := range want {
		if b.Metrics[unit] != v {
			t.Errorf("metric %s = %v, want %v", unit, b.Metrics[unit], v)
		}
	}

	// Subbenchmark names keep their path; no -P suffix means procs=1.
	b, ok = parseLine("BenchmarkEngines/NLSCache 1000000 74.1 ns/op")
	if !ok || b.Name != "Engines/NLSCache" || b.Procs != 1 {
		t.Errorf("subbenchmark: ok=%v %+v", ok, b)
	}

	for _, bad := range []string{
		"",
		"goos: linux",
		"PASS",
		"ok  \trepro\t12.3s",
		"BenchmarkBroken abc 1 ns/op",
		"BenchmarkNoMetrics-4 12",
	} {
		if _, ok := parseLine(bad); ok {
			t.Errorf("parsed non-result line %q", bad)
		}
	}
}
