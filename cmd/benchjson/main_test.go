package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	b, ok := parseLine("BenchmarkSweepBroadcast-8   \t       3\t 412345678 ns/op\t  73.9 Mstep/s\t 1024 B/op\t      12 allocs/op")
	if !ok {
		t.Fatal("line did not parse")
	}
	if b.Name != "SweepBroadcast" || b.Procs != 8 || b.Iterations != 3 {
		t.Errorf("header fields: %+v", b)
	}
	want := map[string]float64{"ns/op": 412345678, "Mstep/s": 73.9, "B/op": 1024, "allocs/op": 12}
	for unit, v := range want {
		if b.Metrics[unit] != v {
			t.Errorf("metric %s = %v, want %v", unit, b.Metrics[unit], v)
		}
	}

	// Subbenchmark names keep their path; no -P suffix means procs=1.
	b, ok = parseLine("BenchmarkEngines/NLSCache 1000000 74.1 ns/op")
	if !ok || b.Name != "Engines/NLSCache" || b.Procs != 1 {
		t.Errorf("subbenchmark: ok=%v %+v", ok, b)
	}

	for _, bad := range []string{
		"",
		"goos: linux",
		"PASS",
		"ok  \trepro\t12.3s",
		"BenchmarkBroken abc 1 ns/op",
		"BenchmarkNoMetrics-4 12",
	} {
		if _, ok := parseLine(bad); ok {
			t.Errorf("parsed non-result line %q", bad)
		}
	}
}

func benchWith(name string, mstep float64) Benchmark {
	return Benchmark{Name: name, Procs: 1, Iterations: 1,
		Metrics: map[string]float64{"Mstep/s": mstep, "ns/op": 1e9 / mstep}}
}

func TestCompare(t *testing.T) {
	old := File{Schema: Schema, Benchmarks: []Benchmark{
		benchWith("SweepBroadcast", 100),
		benchWith("SweepPerCell", 50),
		benchWith("Vanished", 10),
	}}

	// Within tolerance (and improvements) pass; >10% loss fails.
	cur := File{Schema: Schema, Benchmarks: []Benchmark{
		benchWith("SweepBroadcast", 91), // -9%: inside the 10% band
		benchWith("SweepPerCell", 44),   // -12%: regression
		benchWith("Fresh", 5),           // no baseline: reported, not failed
	}}
	report, regressed := compare(old, cur, 0.10)
	if len(regressed) != 1 || regressed[0] != "SweepPerCell" {
		t.Errorf("regressed = %v, want [SweepPerCell]", regressed)
	}
	// One line per current benchmark plus one for the vanished baseline.
	if len(report) != 4 {
		t.Errorf("report has %d lines, want 4: %v", len(report), report)
	}

	// Exactly at the threshold is not a regression (strictly below fails).
	_, regressed = compare(old, File{Schema: Schema,
		Benchmarks: []Benchmark{benchWith("SweepBroadcast", 90)}}, 0.10)
	if len(regressed) != 0 {
		t.Errorf("exact -10%% flagged as regression: %v", regressed)
	}

	// A benchmark without an Mstep/s metric never regresses.
	oldNs := File{Schema: Schema, Benchmarks: []Benchmark{{
		Name: "Parse", Procs: 1, Metrics: map[string]float64{"ns/op": 100}}}}
	curNs := File{Schema: Schema, Benchmarks: []Benchmark{{
		Name: "Parse", Procs: 1, Metrics: map[string]float64{"ns/op": 500}}}}
	if _, regressed = compare(oldNs, curNs, 0.10); len(regressed) != 0 {
		t.Errorf("ns/op-only benchmark flagged: %v", regressed)
	}
}

// TestCompareOneSided: benchmarks present in only one file are reported
// with their metric values — a new benchmark shows what it measured, a
// vanished one shows the baseline it left behind — and neither fails the
// comparison.
func TestCompareOneSided(t *testing.T) {
	old := File{Schema: Schema, Benchmarks: []Benchmark{
		benchWith("Stays", 100),
		{Name: "Vanished", Procs: 4, Iterations: 1,
			Metrics: map[string]float64{"Mstep/s": 10, "ns/op": 250}},
	}}
	cur := File{Schema: Schema, Benchmarks: []Benchmark{
		benchWith("Stays", 100),
		{Name: "Fresh", Procs: 1, Iterations: 1,
			Metrics: map[string]float64{"Mstep/s": 5.5, "allocs/op": 3}},
		{Name: "Bare", Procs: 1, Iterations: 1},
	}}

	report, regressed := compare(old, cur, 0.10)
	if len(regressed) != 0 {
		t.Errorf("one-sided benchmarks regressed the comparison: %v", regressed)
	}

	want := []string{
		// Units in sorted order, values included.
		"Fresh: new benchmark (no baseline): Mstep/s 5.5, allocs/op 3",
		"Bare: new benchmark (no baseline): no metrics",
		"Vanished-4: missing from this run (baseline was Mstep/s 10, ns/op 250)",
	}
	for _, w := range want {
		found := false
		for _, l := range report {
			if l == w {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("report %v\nmissing line %q", report, w)
		}
	}
}

func TestParseRequirement(t *testing.T) {
	metric, pct, err := parseRequirement("Mstep/s 100")
	if err != nil || metric != "Mstep/s" || pct != 100 {
		t.Errorf("parseRequirement: %q %v %v", metric, pct, err)
	}
	for _, bad := range []string{"", "Mstep/s", "Mstep/s abc", "Mstep/s -5", "Mstep/s 0", "a b c"} {
		if _, _, err := parseRequirement(bad); err == nil {
			t.Errorf("parseRequirement(%q) accepted", bad)
		}
	}
}

// TestRequireImprovement: the improvement gate passes only when every
// benchmark of the frozen baseline is present with the metric at or above
// (1+pct/100)x its frozen value; extra current-run benchmarks carry no
// claim and are ignored.
func TestRequireImprovement(t *testing.T) {
	base := File{Schema: Schema, Benchmarks: []Benchmark{
		benchWith("SweepBroadcast", 100),
	}}

	// 2.1x with an unclaimed extra benchmark: pass.
	cur := File{Schema: Schema, Benchmarks: []Benchmark{
		benchWith("SweepBroadcast", 210),
		benchWith("SweepCorpusReplay", 10), // not in baseline: no claim
	}}
	if report, failed := requireImprovement(base, cur, "Mstep/s", 100); len(failed) != 0 {
		t.Errorf("2.1x failed the +100%% gate: %v\n%v", failed, report)
	} else if len(report) != 1 {
		t.Errorf("report covers %d benchmarks, want the 1 claimed: %v", len(report), report)
	}

	// Exactly 2.0x meets a +100% requirement (at-least, not strictly-above).
	cur.Benchmarks[0] = benchWith("SweepBroadcast", 200)
	if _, failed := requireImprovement(base, cur, "Mstep/s", 100); len(failed) != 0 {
		t.Errorf("exact 2.0x failed the +100%% gate: %v", failed)
	}

	// 1.9x fails it.
	cur.Benchmarks[0] = benchWith("SweepBroadcast", 190)
	if _, failed := requireImprovement(base, cur, "Mstep/s", 100); len(failed) != 1 {
		t.Errorf("1.9x passed the +100%% gate: %v", failed)
	}

	// A claimed benchmark missing from the run fails, as does a baseline
	// entry with no positive value for the metric.
	if _, failed := requireImprovement(base, File{Schema: Schema}, "Mstep/s", 100); len(failed) != 1 {
		t.Errorf("missing benchmark passed: %v", failed)
	}
	noMetric := File{Schema: Schema, Benchmarks: []Benchmark{{
		Name: "Parse", Procs: 1, Metrics: map[string]float64{"ns/op": 100}}}}
	if _, failed := requireImprovement(noMetric, cur, "Mstep/s", 100); len(failed) != 1 {
		t.Errorf("metric-less baseline entry passed: %v", failed)
	}
}

// TestRequireRatio: the same-run ratio gate — immune to host-speed drift
// because numerator and denominator come from one run.
func TestRequireRatio(t *testing.T) {
	req, err := parseRatioRequirement("SweepBroadcast/SweepPerCell Mstep/s 2.0")
	if err != nil || req.a != "SweepBroadcast" || req.b != "SweepPerCell" ||
		req.metric != "Mstep/s" || req.min != 2.0 {
		t.Fatalf("parseRatioRequirement: %+v %v", req, err)
	}
	for _, bad := range []string{"", "A/B Mstep/s", "A/B Mstep/s x", "A/B Mstep/s 0",
		"AB Mstep/s 2", "/B Mstep/s 2", "A/ Mstep/s 2"} {
		if _, err := parseRatioRequirement(bad); err == nil {
			t.Errorf("parseRatioRequirement(%q) accepted", bad)
		}
	}

	run := func(a, b float64) File {
		return File{Schema: Schema, Benchmarks: []Benchmark{
			benchWith("SweepBroadcast", a), benchWith("SweepPerCell", b)}}
	}
	if _, err := checkRatio(run(210, 100), req); err != nil {
		t.Errorf("2.1x failed a 2.0x gate: %v", err)
	}
	if _, err := checkRatio(run(200, 100), req); err != nil {
		t.Errorf("exact 2.0x failed a 2.0x gate: %v", err)
	}
	if _, err := checkRatio(run(190, 100), req); err == nil {
		t.Error("1.9x passed a 2.0x gate")
	}
	// Missing benchmarks and a zero denominator fail rather than divide.
	missing := File{Schema: Schema, Benchmarks: []Benchmark{benchWith("SweepBroadcast", 210)}}
	if _, err := checkRatio(missing, req); err == nil {
		t.Error("missing denominator benchmark passed")
	}
	noMetric := File{Schema: Schema, Benchmarks: []Benchmark{
		benchWith("SweepBroadcast", 210),
		{Name: "SweepPerCell", Procs: 1, Metrics: map[string]float64{"ns/op": 5}}}}
	if _, err := checkRatio(noMetric, req); err == nil {
		t.Error("metric-less denominator passed")
	}
}

// TestFileDeterministic: the written document is a pure function of the
// benchmark text — no timestamps, stable key order — so re-running `make
// bench` with identical results leaves BENCH_sweep.json byte-identical.
func TestFileDeterministic(t *testing.T) {
	mk := func() File {
		f := File{Schema: Schema, GoVersion: "go1.24.0", Goos: "linux"}
		b, ok := parseLine("BenchmarkSweepBroadcast \t1\t 2791835170 ns/op\t 103.2 Mstep/s\t 3635072 B/op\t 4788 allocs/op")
		if !ok {
			t.Fatal("result line did not parse")
		}
		f.Benchmarks = append(f.Benchmarks, b)
		return f
	}
	a, err := json.MarshalIndent(mk(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.MarshalIndent(mk(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Errorf("identical input marshalled differently:\n%s\nvs\n%s", a, b)
	}
	if strings.Contains(string(a), "created_at") {
		t.Errorf("document carries a timestamp:\n%s", a)
	}
}
