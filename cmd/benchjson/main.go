// Command benchjson turns `go test -bench` text output into a
// machine-readable JSON file while echoing the text through unchanged, so
// it sits at the end of a pipe without hiding anything:
//
//	go test -run='^$' -bench='BenchmarkSweep(Broadcast|PerCell)$' -benchmem . \
//	    | benchjson -o BENCH_sweep.json
//
// This is what `make bench` runs; the committed BENCH_sweep.json at the
// repo root is the throughput baseline the probe's zero-overhead contract
// is judged against (see EXPERIMENTS.md "Benchmark JSON" for the schema).
//
// The parser understands the standard benchmark result line — name,
// iteration count, then (value, unit) pairs, including custom
// b.ReportMetric units like Mstep/s — plus the goos/goarch/pkg/cpu header
// lines. Anything else passes through untouched. If stdin ends with no
// benchmark lines seen (e.g. the compile failed), benchjson exits nonzero
// so the pipeline still fails loudly.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Schema identifies the BENCH_sweep.json layout; bump on incompatible
// change.
const Schema = "nls-bench/v1"

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the benchmark name without the "Benchmark" prefix or the
	// -P GOMAXPROCS suffix (e.g. "SweepBroadcast", "Engines/NLSCache").
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix (1 when absent).
	Procs int `json:"procs"`
	// Iterations is b.N of the reported run.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit → value for every (value, unit) pair on the line:
	// ns/op, B/op, allocs/op, and custom units like Mstep/s.
	Metrics map[string]float64 `json:"metrics"`
}

// File is the written JSON document.
type File struct {
	Schema    string    `json:"schema"`
	CreatedAt time.Time `json:"created_at"`
	GoVersion string    `json:"go_version"`
	// Goos, Goarch, Pkg, and CPU come from the benchmark header lines.
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "BENCH_sweep.json", "output JSON file")
	flag.Parse()

	file := File{Schema: Schema, CreatedAt: time.Now(), GoVersion: runtime.Version()}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // echo through
		if v, ok := strings.CutPrefix(line, "goos: "); ok {
			file.Goos = v
		} else if v, ok := strings.CutPrefix(line, "goarch: "); ok {
			file.Goarch = v
		} else if v, ok := strings.CutPrefix(line, "pkg: "); ok {
			file.Pkg = v
		} else if v, ok := strings.CutPrefix(line, "cpu: "); ok {
			file.CPU = v
		} else if b, ok := parseLine(line); ok {
			file.Benchmarks = append(file.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		fail(err)
	}
	if len(file.Benchmarks) == 0 {
		fail(fmt.Errorf("no benchmark result lines on stdin"))
	}
	buf, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		fail(err)
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %s (%d benchmarks)\n", *out, len(file.Benchmarks))
}

// parseLine parses one benchmark result line:
//
//	BenchmarkName-8   5   234567890 ns/op   73.9 Mstep/s   12 B/op   3 allocs/op
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	procs := 1
	if i := strings.LastIndex(name, "-"); i > 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			name, procs = name[:i], p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Procs: procs, Iterations: iters,
		Metrics: make(map[string]float64)}
	// The rest are (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	if len(b.Metrics) == 0 {
		return Benchmark{}, false
	}
	return b, true
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
