// Command benchjson turns `go test -bench` text output into a
// machine-readable JSON file while echoing the text through unchanged, so
// it sits at the end of a pipe without hiding anything:
//
//	go test -run='^$' -bench='BenchmarkSweep(Broadcast|PerCell)$' -benchmem . \
//	    | benchjson -o BENCH_sweep.json
//
// This is what `make bench` runs; the committed BENCH_sweep.json at the
// repo root is the throughput baseline the probe's zero-overhead contract
// is judged against (see EXPERIMENTS.md "Benchmark JSON" for the schema).
// The JSON is a pure function of the benchmark text: run metadata that
// varies per invocation (the timestamp, the command line) goes to a run
// manifest (-manifest, schema nls-run/v1) instead, so re-running `make
// bench` on identical results leaves the committed file byte-identical.
//
// -compare old.json prints per-benchmark deltas against a previously
// written file and exits nonzero when any benchmark's Mstep/s throughput
// regresses by more than 10% — `make bench-check` uses it with -o ” as a
// regression gate against the committed baseline.
//
// -require-improvement "<metric> <pct>" is the inverse gate: every
// benchmark listed in the frozen baseline named by -improve-over must be
// present in this run with <metric> at least <pct> percent above the
// frozen value, or benchjson exits nonzero. Where -compare protects
// against sliding back from the current baseline, -require-improvement
// machine-checks a speedup claim against a deliberately old snapshot:
// `make bench-check` uses it against BENCH_baseline.json (the frozen
// pre-corpus, pre-pipeline SweepBroadcast numbers). The baseline file
// lists exactly the benchmarks whose claim is enforced — trimming an
// entry from it withdraws that benchmark's claim.
//
// -require-ratio "<benchA>/<benchB> <metric> <min>" gates a ratio of two
// benchmarks *within this run*: A's metric must be at least <min> times
// B's. Because both sides of the ratio see the same machine at the same
// moment, this gate is immune to the host-speed drift that makes
// absolute Mstep/s comparisons across days unreliable on a shared box —
// it is how the ≥2× broadcast-vs-per-cell scheduler claim is enforced
// (see EXPERIMENTS.md "Sweep throughput").
//
// The parser understands the standard benchmark result line — name,
// iteration count, then (value, unit) pairs, including custom
// b.ReportMetric units like Mstep/s — plus the goos/goarch/pkg/cpu header
// lines. Anything else passes through untouched. If stdin ends with no
// benchmark lines seen (e.g. the compile failed), benchjson exits nonzero
// so the pipeline still fails loudly.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Schema identifies the BENCH_sweep.json layout; bump on incompatible
// change.
const Schema = "nls-bench/v1"

// ManifestSchema identifies the run-manifest layout, shared with the
// nlstables run telemetry (internal/experiments.ManifestSchema).
const ManifestSchema = "nls-run/v1"

// regressTolerance is the fraction of Mstep/s a benchmark may lose before
// -compare fails the run.
const regressTolerance = 0.10

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the benchmark name without the "Benchmark" prefix or the
	// -P GOMAXPROCS suffix (e.g. "SweepBroadcast", "Engines/NLSCache").
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix (1 when absent).
	Procs int `json:"procs"`
	// Iterations is b.N of the reported run.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit → value for every (value, unit) pair on the line:
	// ns/op, B/op, allocs/op, and custom units like Mstep/s.
	Metrics map[string]float64 `json:"metrics"`
}

// File is the written JSON document. It deliberately carries no timestamp
// or other per-invocation state: identical benchmark text must marshal to
// identical bytes (timestamps live in the run manifest).
type File struct {
	Schema    string `json:"schema"`
	GoVersion string `json:"go_version"`
	// Goos, Goarch, Pkg, and CPU come from the benchmark header lines.
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// manifest is the per-invocation record written next to the nlstables run
// manifests under results/runs/: when the bench ran, how it was invoked,
// and which benchmarks it produced — everything deliberately excluded from
// the deterministic File.
type manifest struct {
	Schema     string    `json:"schema"`
	CreatedAt  time.Time `json:"created_at"`
	Command    []string  `json:"command,omitempty"`
	GoVersion  string    `json:"go_version"`
	CPU        string    `json:"cpu,omitempty"`
	Output     string    `json:"bench_output,omitempty"`
	Benchmarks []string  `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "BENCH_sweep.json", "output JSON file ('' skips writing)")
	compareWith := flag.String("compare", "", "compare against a previously written JSON file; exit nonzero on >10% Mstep/s regression")
	manifestDir := flag.String("manifest", "", "directory for the timestamped run manifest ('' skips it)")
	requireImprove := flag.String("require-improvement", "", `"<metric> <pct>": require every benchmark in the -improve-over baseline to beat its frozen <metric> by at least <pct> percent (e.g. 'Mstep/s 100' demands a >=2x speedup)`)
	improveOver := flag.String("improve-over", "BENCH_baseline.json", "frozen baseline file for -require-improvement")
	requireRatio := flag.String("require-ratio", "", `"<benchA>/<benchB> <metric> <min>": require benchA's <metric> to be at least <min> times benchB's within this run (host-drift-immune)`)
	flag.Parse()

	var impMetric string
	var impPct float64
	if *requireImprove != "" {
		var err error
		impMetric, impPct, err = parseRequirement(*requireImprove)
		if err != nil {
			fail(err)
		}
	}
	var ratioReq ratioRequirement
	if *requireRatio != "" {
		var err error
		ratioReq, err = parseRatioRequirement(*requireRatio)
		if err != nil {
			fail(err)
		}
	}

	file := File{Schema: Schema, GoVersion: runtime.Version()}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // echo through
		if v, ok := strings.CutPrefix(line, "goos: "); ok {
			file.Goos = v
		} else if v, ok := strings.CutPrefix(line, "goarch: "); ok {
			file.Goarch = v
		} else if v, ok := strings.CutPrefix(line, "pkg: "); ok {
			file.Pkg = v
		} else if v, ok := strings.CutPrefix(line, "cpu: "); ok {
			file.CPU = v
		} else if b, ok := parseLine(line); ok {
			file.Benchmarks = append(file.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		fail(err)
	}
	if len(file.Benchmarks) == 0 {
		fail(fmt.Errorf("no benchmark result lines on stdin"))
	}

	if *out != "" {
		buf, err := json.MarshalIndent(file, "", "  ")
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "benchjson: wrote %s (%d benchmarks)\n", *out, len(file.Benchmarks))
	}

	if *manifestDir != "" {
		if err := writeManifest(*manifestDir, *out, file); err != nil {
			fail(err)
		}
	}

	if *compareWith != "" {
		old, err := readFile(*compareWith)
		if err != nil {
			fail(err)
		}
		report, regressed := compare(old, file, regressTolerance)
		fmt.Fprintf(os.Stderr, "benchjson: compare vs %s\n", *compareWith)
		for _, l := range report {
			fmt.Fprintln(os.Stderr, "  "+l)
		}
		if len(regressed) > 0 {
			fail(fmt.Errorf("Mstep/s regressed >%d%%: %s",
				int(regressTolerance*100), strings.Join(regressed, ", ")))
		}
	}

	if *requireImprove != "" {
		base, err := readFile(*improveOver)
		if err != nil {
			fail(err)
		}
		report, failed := requireImprovement(base, file, impMetric, impPct)
		fmt.Fprintf(os.Stderr, "benchjson: require %s +%g%% vs %s\n", impMetric, impPct, *improveOver)
		for _, l := range report {
			fmt.Fprintln(os.Stderr, "  "+l)
		}
		if len(failed) > 0 {
			fail(fmt.Errorf("%s improvement below +%g%% vs %s: %s",
				impMetric, impPct, *improveOver, strings.Join(failed, ", ")))
		}
	}

	if *requireRatio != "" {
		line, err := checkRatio(file, ratioReq)
		fmt.Fprintln(os.Stderr, "benchjson: "+line)
		if err != nil {
			fail(err)
		}
	}
}

// ratioRequirement is a parsed -require-ratio value: benchmark a's metric
// must be at least min times benchmark b's, both from the current run.
type ratioRequirement struct {
	a, b   string
	metric string
	min    float64
}

// parseRatioRequirement splits a "<benchA>/<benchB> <metric> <min>"
// -require-ratio value. Benchmark names are the JSON names (no
// "Benchmark" prefix); subbenchmark paths keep their inner slashes, so
// the a/b split is on the slash that leaves both sides non-empty and
// matching — unambiguous for top-level benchmarks, which is what the
// gate is for.
func parseRatioRequirement(s string) (ratioRequirement, error) {
	fields := strings.Fields(s)
	if len(fields) != 3 {
		return ratioRequirement{}, fmt.Errorf(`-require-ratio %q: want "<benchA>/<benchB> <metric> <min>"`, s)
	}
	a, b, ok := strings.Cut(fields[0], "/")
	if !ok || a == "" || b == "" {
		return ratioRequirement{}, fmt.Errorf("-require-ratio %q: want two benchmark names joined by /", s)
	}
	min, err := strconv.ParseFloat(fields[2], 64)
	if err != nil || min <= 0 {
		return ratioRequirement{}, fmt.Errorf("-require-ratio %q: minimum ratio must be a positive number", s)
	}
	return ratioRequirement{a: a, b: b, metric: fields[1], min: min}, nil
}

// checkRatio evaluates a ratioRequirement against the current run. The
// returned line always describes what was (or could not be) measured; err
// is non-nil when the gate fails.
func checkRatio(cur File, req ratioRequirement) (string, error) {
	byName := make(map[string]Benchmark, len(cur.Benchmarks))
	for _, b := range cur.Benchmarks {
		byName[benchKey(b)] = b
	}
	for _, name := range []string{req.a, req.b} {
		if _, ok := byName[name]; !ok {
			return fmt.Sprintf("require %s/%s: %s missing from this run", req.a, req.b, name),
				fmt.Errorf("-require-ratio: benchmark %q not in this run", name)
		}
	}
	den := byName[req.b].Metrics[req.metric]
	if den <= 0 {
		return fmt.Sprintf("require %s/%s: %s has no positive %s", req.a, req.b, req.b, req.metric),
			fmt.Errorf("-require-ratio: %s has no positive %s", req.b, req.metric)
	}
	ratio := byName[req.a].Metrics[req.metric] / den
	line := fmt.Sprintf("require %s >= %.2fx %s on %s: measured %.2fx", req.a, req.min, req.b, req.metric, ratio)
	if ratio < req.min {
		return line + "; FAIL", fmt.Errorf("-require-ratio: %s is %.2fx %s on %s, need >=%.2fx",
			req.a, ratio, req.b, req.metric, req.min)
	}
	return line + "; ok", nil
}

// parseRequirement splits a "<metric> <pct>" -require-improvement value.
func parseRequirement(s string) (metric string, pct float64, err error) {
	fields := strings.Fields(s)
	if len(fields) != 2 {
		return "", 0, fmt.Errorf(`-require-improvement %q: want "<metric> <pct>" (e.g. 'Mstep/s 100')`, s)
	}
	pct, err = strconv.ParseFloat(fields[1], 64)
	if err != nil || pct <= 0 {
		return "", 0, fmt.Errorf("-require-improvement %q: percentage must be a positive number", s)
	}
	return fields[0], pct, nil
}

// requireImprovement checks every benchmark of the frozen baseline against
// the current run: present, with metric at least (1+pct/100) times the
// frozen value. The baseline is the authority on which benchmarks carry a
// claim — current-run benchmarks absent from it are ignored — so the gate
// stays meaningful as new benchmarks are added to the suite.
func requireImprovement(base, cur File, metric string, pct float64) (report, failed []string) {
	need := 1 + pct/100
	curBy := make(map[string]Benchmark, len(cur.Benchmarks))
	for _, b := range cur.Benchmarks {
		curBy[benchKey(b)] = b
	}
	for _, b := range base.Benchmarks {
		key := benchKey(b)
		frozen, ok := b.Metrics[metric]
		if !ok || frozen <= 0 {
			report = append(report, fmt.Sprintf("%s: baseline has no positive %s; FAIL", key, metric))
			failed = append(failed, key)
			continue
		}
		now, ok := curBy[key]
		if !ok {
			report = append(report, fmt.Sprintf("%s: missing from this run; FAIL", key))
			failed = append(failed, key)
			continue
		}
		got := now.Metrics[metric]
		ratio := got / frozen
		line := fmt.Sprintf("%s: %s %.4g -> %.4g (%.2fx, need >=%.2fx)", key, metric, frozen, got, ratio, need)
		if ratio < need {
			line += "; FAIL"
			failed = append(failed, key)
		} else {
			line += "; ok"
		}
		report = append(report, line)
	}
	return report, failed
}

// readFile loads and validates a previously written benchmark JSON file.
func readFile(path string) (File, error) {
	var f File
	buf, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(buf, &f); err != nil {
		return f, fmt.Errorf("%s: %v", path, err)
	}
	if f.Schema != Schema {
		return f, fmt.Errorf("%s: schema %q, want %q", path, f.Schema, Schema)
	}
	return f, nil
}

// benchKey identifies a benchmark across files.
func benchKey(b Benchmark) string {
	if b.Procs == 1 {
		return b.Name
	}
	return fmt.Sprintf("%s-%d", b.Name, b.Procs)
}

// compare reports the per-benchmark metric deltas of cur against old and
// which benchmarks regressed: present in both files, with an Mstep/s
// throughput below (1-tol) of the old value. New or vanished benchmarks
// are reported but never fail the comparison.
func compare(old, cur File, tol float64) (report, regressed []string) {
	oldBy := make(map[string]Benchmark, len(old.Benchmarks))
	for _, b := range old.Benchmarks {
		oldBy[benchKey(b)] = b
	}
	seen := make(map[string]bool, len(cur.Benchmarks))
	for _, b := range cur.Benchmarks {
		key := benchKey(b)
		seen[key] = true
		prev, ok := oldBy[key]
		if !ok {
			report = append(report, fmt.Sprintf("%s: new benchmark (no baseline): %s", key, metricsLine(b)))
			continue
		}
		units := make([]string, 0, len(b.Metrics))
		for u := range b.Metrics {
			if _, ok := prev.Metrics[u]; ok {
				units = append(units, u)
			}
		}
		sort.Strings(units)
		parts := make([]string, 0, len(units))
		for _, u := range units {
			ov, nv := prev.Metrics[u], b.Metrics[u]
			switch {
			case ov == 0:
				parts = append(parts, fmt.Sprintf("%s %.4g -> %.4g", u, ov, nv))
			default:
				parts = append(parts, fmt.Sprintf("%s %.4g -> %.4g (%+.1f%%)", u, ov, nv, 100*(nv-ov)/ov))
			}
		}
		report = append(report, fmt.Sprintf("%s: %s", key, strings.Join(parts, ", ")))
		if ov, ok := prev.Metrics["Mstep/s"]; ok && ov > 0 {
			if b.Metrics["Mstep/s"] < ov*(1-tol) {
				regressed = append(regressed, key)
			}
		}
	}
	for _, b := range old.Benchmarks {
		if key := benchKey(b); !seen[key] {
			report = append(report, fmt.Sprintf("%s: missing from this run (baseline was %s)", key, metricsLine(b)))
		}
	}
	return report, regressed
}

// metricsLine renders a benchmark's metrics in stable unit order, for the
// one-sided report lines where there is no old/new pair to diff.
func metricsLine(b Benchmark) string {
	if len(b.Metrics) == 0 {
		return "no metrics"
	}
	units := make([]string, 0, len(b.Metrics))
	for u := range b.Metrics {
		units = append(units, u)
	}
	sort.Strings(units)
	parts := make([]string, 0, len(units))
	for _, u := range units {
		parts = append(parts, fmt.Sprintf("%s %.4g", u, b.Metrics[u]))
	}
	return strings.Join(parts, ", ")
}

// writeManifest records the invocation under dir as <timestamp>-bench.json.
func writeManifest(dir, output string, f File) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	m := manifest{
		Schema:    ManifestSchema,
		CreatedAt: time.Now(),
		Command:   os.Args,
		GoVersion: f.GoVersion,
		CPU:       f.CPU,
		Output:    output,
	}
	for _, b := range f.Benchmarks {
		m.Benchmarks = append(m.Benchmarks, benchKey(b))
	}
	path := filepath.Join(dir, m.CreatedAt.UTC().Format("20060102T150405.000000000Z")+"-bench.json")
	buf, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchjson: manifest %s\n", path)
	return nil
}

// parseLine parses one benchmark result line:
//
//	BenchmarkName-8   5   234567890 ns/op   73.9 Mstep/s   12 B/op   3 allocs/op
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	procs := 1
	if i := strings.LastIndex(name, "-"); i > 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			name, procs = name[:i], p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Procs: procs, Iterations: iters,
		Metrics: make(map[string]float64)}
	// The rest are (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	if len(b.Metrics) == 0 {
		return Benchmark{}, false
	}
	return b, true
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
