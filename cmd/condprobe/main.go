// Command condprobe is a workload diagnostic: it runs a standalone
// direction predictor over an analogue's conditional-branch stream and
// attributes mispredictions to branch sites and their CFG behaviors (loop
// backedges, duty-cycle patterns, biased guards). It was used to calibrate
// the workload generators so the paper's PHT achieves era-realistic
// accuracy (see EXPERIMENTS.md), and remains useful when adding analogues.
//
// Usage:
//
//	condprobe -workload gcc [-n 2000000] [-pht gshare|bimodal] [-hist 6] [-top 12]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/cfg"
	"repro/internal/exec"
	"repro/internal/isa"
	"repro/internal/pht"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		wl        = flag.String("workload", "gcc", "workload analogue name")
		n         = flag.Int("n", 1_000_000, "instructions to execute")
		predictor = flag.String("pht", "gshare", "direction predictor: gshare or bimodal")
		hist      = flag.Int("hist", 6, "gshare history bits (0 = full index width)")
		top       = flag.Int("top", 12, "behavior classes and sites to print")
	)
	flag.Parse()

	spec, ok := workload.ByName(*wl)
	if !ok {
		fatal(fmt.Errorf("unknown workload %q", *wl))
	}
	p, err := spec.Program()
	if err != nil {
		fatal(err)
	}

	// Map conditional terminator addresses to behavior descriptions.
	desc := map[isa.Addr]string{}
	for _, pr := range p.Procs {
		for _, b := range pr.Blocks {
			if b.Term.Kind != isa.CondBranch {
				continue
			}
			switch bh := b.Term.Behavior; bh.Kind {
			case cfg.BehaviorLoop:
				desc[b.TermAddr()] = fmt.Sprintf("loop trip=%d", bh.Trip)
			case cfg.BehaviorBias:
				desc[b.TermAddr()] = fmt.Sprintf("bias p=%.2f", bh.P)
			case cfg.BehaviorPattern:
				desc[b.TermAddr()] = fmt.Sprintf("pattern len=%d", len(bh.Pattern))
			}
		}
	}

	e, err := exec.New(p, spec.Seed^0x9e3779b97f4a7c15)
	if err != nil {
		fatal(err)
	}
	var g pht.Predictor
	switch *predictor {
	case "bimodal":
		g = pht.NewBimodal(4096)
	case "gshare":
		g = pht.NewGShare(4096, *hist)
	default:
		fatal(fmt.Errorf("unknown predictor %q", *predictor))
	}

	type tally struct{ execs, wrong uint64 }
	sites := map[isa.Addr]*tally{}
	var execs, wrong uint64
	e.Run(*n, func(r trace.Record) {
		if r.Kind != isa.CondBranch {
			return
		}
		s := sites[r.PC]
		if s == nil {
			s = &tally{}
			sites[r.PC] = s
		}
		s.execs++
		execs++
		if g.Predict(r.PC) != r.Taken {
			s.wrong++
			wrong++
		}
		g.Update(r.PC, r.Taken)
	})
	if execs == 0 {
		fatal(fmt.Errorf("no conditional branches executed"))
	}

	fmt.Printf("%s with %s: conds=%d accuracy=%.2f%% restarts=%d (pass ≈ %d insns)\n",
		spec.Name, g.Name(), execs, 100*(1-float64(wrong)/float64(execs)),
		e.Restarts(), uint64(*n)/(e.Restarts()+1))

	// Aggregate by behavior class.
	agg := map[string]*tally{}
	for a, s := range sites {
		d := desc[a]
		if d == "" {
			d = "(unattributed)"
		}
		t := agg[d]
		if t == nil {
			t = &tally{}
			agg[d] = t
		}
		t.execs += s.execs
		t.wrong += s.wrong
	}
	keys := make([]string, 0, len(agg))
	for k := range agg {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return agg[keys[i]].wrong > agg[keys[j]].wrong })
	fmt.Printf("\nbehavior classes by mispredictions (top %d):\n", *top)
	for i, k := range keys {
		if i >= *top {
			break
		}
		t := agg[k]
		fmt.Printf("  %-18s execs=%8d wrong=%7d acc=%5.1f%% share=%4.1f%%\n",
			k, t.execs, t.wrong, 100*(1-float64(t.wrong)/float64(t.execs)),
			100*float64(t.wrong)/float64(wrong))
	}

	type site struct {
		a isa.Addr
		t *tally
	}
	list := make([]site, 0, len(sites))
	for a, s := range sites {
		list = append(list, site{a, s})
	}
	sort.Slice(list, func(i, j int) bool { return list[i].t.wrong > list[j].t.wrong })
	fmt.Printf("\nworst sites (top %d):\n", *top)
	for i := 0; i < *top && i < len(list); i++ {
		it := list[i]
		fmt.Printf("  %s %-18s execs=%8d wrong=%7d\n", it.a, desc[it.a], it.t.execs, it.t.wrong)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "condprobe:", err)
	os.Exit(1)
}
